#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace factorhd::net {

NetClient::NetClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect(" + host + ":" + std::to_string(port) +
                             ") failed: " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

NetClient::~NetClient() { close(); }

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::set_recv_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void NetClient::send_raw(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("send failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::uint64_t NetClient::send_frame(Opcode opcode, std::uint8_t flags,
                                    std::span<const std::uint8_t> payload) {
  const std::uint64_t id = next_request_id_++;
  send_raw(encode_frame(opcode, flags, id, payload));
  return id;
}

std::uint64_t NetClient::send_factorize(const hdc::Hypervector& target,
                                        const core::FactorizeOptions& opts,
                                        bool stream,
                                        std::uint32_t deadline_hint_us) {
  FactorizeRequest req;
  req.opts = opts;
  req.deadline_hint_us = deadline_hint_us;
  req.target = target;
  return send_frame(Opcode::kFactorize, stream ? kFlagStream : 0,
                    encode_factorize_request(req));
}

std::uint64_t NetClient::send_ping(const std::string& payload) {
  return send_frame(
      Opcode::kPing, 0,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size()));
}

std::uint64_t NetClient::send_stats() {
  return send_frame(Opcode::kStats, 0, {});
}

NetClient::Response NetClient::recv_response() {
  while (true) {
    // Consume already-parsed frames first (pipelined responses often arrive
    // several per read).
    while (!pending_.empty()) {
      Frame frame = std::move(pending_.front());
      pending_.erase(pending_.begin());
      const std::uint64_t rid = frame.header.request_id;
      switch (frame.opcode()) {
        case Opcode::kPartial: {
          auto [index, obj] = decode_partial(frame.payload);
          auto& objs = partials_[rid];
          if (index != objs.size()) {
            throw ProtocolError("partial index " + std::to_string(index) +
                                " out of order (expected " +
                                std::to_string(objs.size()) + ")");
          }
          objs.push_back(std::move(obj));
          continue;  // not a logical response yet
        }
        case Opcode::kResult: {
          Response resp;
          resp.request_id = rid;
          resp.kind = Response::Kind::kResult;
          const bool streamed = (frame.header.flags & kFlagStreamed) != 0;
          std::vector<core::FactorizedObject> objs;
          if (streamed) {
            const auto it = partials_.find(rid);
            if (it != partials_.end()) {
              objs = std::move(it->second);
              partials_.erase(it);
            }
          }
          resp.partial_frames = streamed ? objs.size() : 0;
          resp.result = decode_result(frame.payload, streamed, std::move(objs));
          return resp;
        }
        case Opcode::kPong: {
          Response resp;
          resp.request_id = rid;
          resp.kind = Response::Kind::kPong;
          resp.text.assign(frame.payload.begin(), frame.payload.end());
          return resp;
        }
        case Opcode::kStatsText: {
          Response resp;
          resp.request_id = rid;
          resp.kind = Response::Kind::kStats;
          PayloadReader r(frame.payload);
          resp.text = r.get_string();
          r.expect_end();
          return resp;
        }
        case Opcode::kError: {
          Response resp;
          resp.request_id = rid;
          resp.kind = Response::Kind::kError;
          auto [code, message] = decode_error(frame.payload);
          resp.error_code = code;
          resp.text = std::move(message);
          return resp;
        }
        case Opcode::kOverload: {
          Response resp;
          resp.request_id = rid;
          resp.kind = Response::Kind::kOverload;
          resp.overload = decode_overload(frame.payload);
          return resp;
        }
        default:
          throw ProtocolError("unexpected response opcode " +
                              std::to_string(frame.header.opcode));
      }
    }
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      parser_.feed(std::span<const std::uint8_t>(buf,
                                                 static_cast<std::size_t>(n)),
                   pending_);
      continue;
    }
    if (n == 0) throw std::runtime_error("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("receive timeout");
    }
    throw std::runtime_error("recv failed: " +
                             std::string(std::strerror(errno)));
  }
}

core::FactorizeResult NetClient::factorize(const hdc::Hypervector& target,
                                           const core::FactorizeOptions& opts,
                                           bool stream,
                                           std::uint32_t deadline_hint_us) {
  const std::uint64_t id =
      send_factorize(target, opts, stream, deadline_hint_us);
  while (true) {
    Response resp = recv_response();
    if (resp.request_id != id) {
      // A pipelined caller mixing factorize() with manual sends would hit
      // this; the synchronous helper owns the connection by contract.
      throw ProtocolError("response id " + std::to_string(resp.request_id) +
                          " does not match request " + std::to_string(id));
    }
    switch (resp.kind) {
      case Response::Kind::kResult:
        return std::move(resp.result);
      case Response::Kind::kError:
        throw ServerError(resp.error_code, resp.text);
      case Response::Kind::kOverload:
        throw OverloadError(std::move(resp.overload));
      default:
        throw ProtocolError("unexpected response kind to factorize");
    }
  }
}

}  // namespace factorhd::net
