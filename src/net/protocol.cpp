#include "net/protocol.hpp"

#include <bit>
#include <cstring>
#include <utility>

namespace factorhd::net {
namespace {

// Sanity ceiling on variable-length counts inside payloads (selected
// classes, rounds, per-round candidate vectors, level similarities). Any
// legitimate count is bounded by the payload size itself; this cuts off
// hostile counts early with a clear error instead of a huge loop.
constexpr std::size_t kMaxInlineCount = 1u << 20;

void check_count(std::uint64_t n, std::size_t remaining, std::size_t elem_size,
                 const char* what) {
  if (n > kMaxInlineCount || n * elem_size > remaining) {
    throw ProtocolError(std::string("implausible count for ") + what);
  }
}

}  // namespace

const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kFactorize: return "factorize";
    case Opcode::kPing: return "ping";
    case Opcode::kStats: return "stats";
    case Opcode::kResult: return "result";
    case Opcode::kPartial: return "partial";
    case Opcode::kPong: return "pong";
    case Opcode::kStatsText: return "stats_text";
    case Opcode::kError: return "error";
    case Opcode::kOverload: return "overload";
  }
  return "unknown";
}

bool known_opcode(std::uint8_t raw) noexcept {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kFactorize:
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kResult:
    case Opcode::kPartial:
    case Opcode::kPong:
    case Opcode::kStatsText:
    case Opcode::kError:
    case Opcode::kOverload:
      return true;
  }
  return false;
}

std::uint32_t payload_checksum(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Frame encode / incremental decode
// ---------------------------------------------------------------------------

namespace {

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_le32(out, static_cast<std::uint32_t>(v));
  put_le32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_le32(p)) |
         (static_cast<std::uint64_t>(get_le32(p + 4)) << 32);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(Opcode opcode, std::uint8_t flags,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  put_le32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(opcode));
  out.push_back(flags);
  out.push_back(0);  // reserved
  out.push_back(0);
  put_le64(out, request_id);
  put_le32(out, static_cast<std::uint32_t>(payload.size()));
  put_le32(out, payload_checksum(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameParser::FrameParser(std::size_t max_payload) : max_payload_(max_payload) {}

void FrameParser::feed(std::span<const std::uint8_t> data,
                       std::vector<Frame>& out) {
  if (poisoned_) throw ProtocolError("parser poisoned by earlier framing error");
  buf_.insert(buf_.end(), data.begin(), data.end());
  std::size_t pos = 0;
  while (buf_.size() - pos >= kHeaderSize) {
    const std::uint8_t* h = buf_.data() + pos;
    if (get_le32(h) != kMagic) {
      poisoned_ = true;
      throw ProtocolError("bad frame magic");
    }
    if (h[6] != 0 || h[7] != 0) {
      poisoned_ = true;
      throw ProtocolError("nonzero reserved header bits");
    }
    const std::uint32_t payload_len = get_le32(h + 16);
    if (payload_len > max_payload_) {
      poisoned_ = true;
      throw ProtocolError("frame payload length " +
                          std::to_string(payload_len) + " exceeds limit " +
                          std::to_string(max_payload_));
    }
    if (buf_.size() - pos < kHeaderSize + payload_len) break;  // incomplete
    Frame frame;
    frame.header.opcode = h[4];
    frame.header.flags = h[5];
    frame.header.request_id = get_le64(h + 8);
    frame.header.payload_len = payload_len;
    frame.header.checksum = get_le32(h + 20);
    frame.payload.assign(h + kHeaderSize, h + kHeaderSize + payload_len);
    if (payload_checksum(frame.payload) != frame.header.checksum) {
      poisoned_ = true;
      throw ProtocolError("payload checksum mismatch on request " +
                          std::to_string(frame.header.request_id));
    }
    pos += kHeaderSize + payload_len;
    out.push_back(std::move(frame));
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

// ---------------------------------------------------------------------------
// PayloadReader / PayloadWriter
// ---------------------------------------------------------------------------

void PayloadReader::need(std::size_t n) const {
  if (bytes_.size() - offset_ < n) {
    throw ProtocolError("payload truncated");
  }
}

std::uint8_t PayloadReader::get_u8() {
  need(1);
  return bytes_[offset_++];
}

std::uint16_t PayloadReader::get_u16() {
  need(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>(bytes_[offset_]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(bytes_[offset_ + 1])
                                 << 8);
  offset_ += 2;
  return v;
}

std::uint32_t PayloadReader::get_u32() {
  need(4);
  const std::uint32_t v = get_le32(bytes_.data() + offset_);
  offset_ += 4;
  return v;
}

std::uint64_t PayloadReader::get_u64() {
  need(8);
  const std::uint64_t v = get_le64(bytes_.data() + offset_);
  offset_ += 8;
  return v;
}

std::int32_t PayloadReader::get_i32() {
  return static_cast<std::int32_t>(get_u32());
}

double PayloadReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string PayloadReader::get_string() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + offset_), len);
  offset_ += len;
  return s;
}

void PayloadReader::expect_end() const {
  if (remaining() != 0) {
    throw ProtocolError("trailing bytes in payload");
  }
}

void PayloadWriter::put_u8(std::uint8_t v) { bytes_.push_back(v); }

void PayloadWriter::put_u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PayloadWriter::put_u32(std::uint32_t v) { put_le32(bytes_, v); }

void PayloadWriter::put_u64(std::uint64_t v) { put_le64(bytes_, v); }

void PayloadWriter::put_i32(std::int32_t v) {
  put_u32(static_cast<std::uint32_t>(v));
}

void PayloadWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void PayloadWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// Factorize request
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_factorize_request(const FactorizeRequest& req) {
  PayloadWriter w;
  const core::FactorizeOptions& o = req.opts;
  w.put_u8(o.multi_object ? 1 : 0);
  w.put_u8(o.exact_scan ? 1 : 0);
  w.put_u8(o.collect_trace ? 1 : 0);
  w.put_f64(o.threshold);
  w.put_u64(o.num_objects_hint);
  w.put_u64(o.max_objects);
  w.put_u64(o.max_depth);
  w.put_u64(o.max_candidates_per_class);
  w.put_u32(static_cast<std::uint32_t>(o.selected_classes.size()));
  for (const std::size_t c : o.selected_classes) {
    w.put_u32(static_cast<std::uint32_t>(c));
  }
  w.put_u32(req.deadline_hint_us);
  const auto& comps = req.target.components();
  w.put_u32(static_cast<std::uint32_t>(comps.size()));
  for (const std::int32_t c : comps) w.put_i32(c);
  return w.take();
}

FactorizeRequest decode_factorize_request(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  FactorizeRequest req;
  core::FactorizeOptions& o = req.opts;
  o.multi_object = r.get_u8() != 0;
  o.exact_scan = r.get_u8() != 0;
  o.collect_trace = r.get_u8() != 0;
  o.threshold = r.get_f64();
  o.num_objects_hint = static_cast<std::size_t>(r.get_u64());
  o.max_objects = static_cast<std::size_t>(r.get_u64());
  o.max_depth = static_cast<std::size_t>(r.get_u64());
  o.max_candidates_per_class = static_cast<std::size_t>(r.get_u64());
  const std::uint32_t num_selected = r.get_u32();
  check_count(num_selected, r.remaining(), 4, "selected classes");
  o.selected_classes.reserve(num_selected);
  for (std::uint32_t i = 0; i < num_selected; ++i) {
    o.selected_classes.push_back(r.get_u32());
  }
  req.deadline_hint_us = r.get_u32();
  const std::uint32_t dim = r.get_u32();
  check_count(dim, r.remaining(), 4, "hypervector dimension");
  std::vector<std::int32_t> comps;
  comps.reserve(dim);
  for (std::uint32_t i = 0; i < dim; ++i) comps.push_back(r.get_i32());
  r.expect_end();
  req.target = hdc::Hypervector(std::move(comps));
  return req;
}

// ---------------------------------------------------------------------------
// FactorizedObject / FactorizeResult
// ---------------------------------------------------------------------------

namespace {

void encode_class(PayloadWriter& w, const core::ClassFactorization& cf) {
  w.put_u32(static_cast<std::uint32_t>(cf.cls));
  w.put_u8(cf.present ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(cf.path.size()));
  for (const std::size_t s : cf.path) w.put_u32(static_cast<std::uint32_t>(s));
  w.put_u32(static_cast<std::uint32_t>(cf.level_similarities.size()));
  for (const double d : cf.level_similarities) w.put_f64(d);
  w.put_f64(cf.null_similarity);
}

core::ClassFactorization decode_class(PayloadReader& r) {
  core::ClassFactorization cf;
  cf.cls = r.get_u32();
  cf.present = r.get_u8() != 0;
  const std::uint32_t num_steps = r.get_u32();
  check_count(num_steps, r.remaining(), 4, "path steps");
  cf.path.reserve(num_steps);
  for (std::uint32_t i = 0; i < num_steps; ++i) cf.path.push_back(r.get_u32());
  const std::uint32_t num_levels = r.get_u32();
  check_count(num_levels, r.remaining(), 8, "level similarities");
  cf.level_similarities.reserve(num_levels);
  for (std::uint32_t i = 0; i < num_levels; ++i) {
    cf.level_similarities.push_back(r.get_f64());
  }
  cf.null_similarity = r.get_f64();
  return cf;
}

void encode_round_trace(PayloadWriter& w, const core::RoundTrace& rt) {
  w.put_u32(static_cast<std::uint32_t>(rt.candidates_per_class.size()));
  for (const std::size_t c : rt.candidates_per_class) {
    w.put_u32(static_cast<std::uint32_t>(c));
  }
  w.put_u32(static_cast<std::uint32_t>(rt.null_candidates));
  w.put_u64(rt.combinations);
  w.put_f64(rt.best_similarity);
  w.put_u8(rt.accepted ? 1 : 0);
}

core::RoundTrace decode_round_trace(PayloadReader& r) {
  core::RoundTrace rt;
  const std::uint32_t num_classes = r.get_u32();
  check_count(num_classes, r.remaining(), 4, "trace candidate counts");
  rt.candidates_per_class.reserve(num_classes);
  for (std::uint32_t i = 0; i < num_classes; ++i) {
    rt.candidates_per_class.push_back(r.get_u32());
  }
  rt.null_candidates = r.get_u32();
  rt.combinations = r.get_u64();
  rt.best_similarity = r.get_f64();
  rt.accepted = r.get_u8() != 0;
  return rt;
}

}  // namespace

void encode_factorized_object(PayloadWriter& w,
                              const core::FactorizedObject& obj) {
  w.put_u32(static_cast<std::uint32_t>(obj.classes.size()));
  for (const auto& cf : obj.classes) encode_class(w, cf);
  w.put_f64(obj.match_similarity);
}

core::FactorizedObject decode_factorized_object(PayloadReader& r) {
  core::FactorizedObject obj;
  const std::uint32_t num_classes = r.get_u32();
  check_count(num_classes, r.remaining(), 14, "object classes");
  obj.classes.reserve(num_classes);
  for (std::uint32_t i = 0; i < num_classes; ++i) {
    obj.classes.push_back(decode_class(r));
  }
  obj.match_similarity = r.get_f64();
  return obj;
}

std::vector<std::uint8_t> encode_result(const core::FactorizeResult& result,
                                        bool streamed) {
  PayloadWriter w;
  w.put_u64(result.similarity_ops);
  w.put_u64(result.combinations_checked);
  w.put_u64(result.exact_rescans);
  w.put_u64(result.probes);
  w.put_u64(result.rounds);
  w.put_u8(result.converged ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(result.trace.size()));
  for (const auto& rt : result.trace) encode_round_trace(w, rt);
  w.put_u32(static_cast<std::uint32_t>(result.objects.size()));
  if (!streamed) {
    for (const auto& obj : result.objects) encode_factorized_object(w, obj);
  }
  return w.take();
}

core::FactorizeResult decode_result(
    std::span<const std::uint8_t> payload, bool streamed,
    std::vector<core::FactorizedObject> partials) {
  PayloadReader r(payload);
  core::FactorizeResult result;
  result.similarity_ops = r.get_u64();
  result.combinations_checked = r.get_u64();
  result.exact_rescans = r.get_u64();
  result.probes = r.get_u64();
  result.rounds = r.get_u64();
  result.converged = r.get_u8() != 0;
  const std::uint32_t num_rounds = r.get_u32();
  check_count(num_rounds, r.remaining(), 21, "round traces");
  result.trace.reserve(num_rounds);
  for (std::uint32_t i = 0; i < num_rounds; ++i) {
    result.trace.push_back(decode_round_trace(r));
  }
  const std::uint32_t num_objects = r.get_u32();
  if (streamed) {
    r.expect_end();
    if (partials.size() != num_objects) {
      throw ProtocolError("streamed result expected " +
                          std::to_string(num_objects) + " partials, got " +
                          std::to_string(partials.size()));
    }
    result.objects = std::move(partials);
  } else {
    check_count(num_objects, r.remaining(), 12, "result objects");
    result.objects.reserve(num_objects);
    for (std::uint32_t i = 0; i < num_objects; ++i) {
      result.objects.push_back(decode_factorized_object(r));
    }
    r.expect_end();
  }
  return result;
}

std::vector<std::uint8_t> encode_partial(std::uint32_t index,
                                         const core::FactorizedObject& obj) {
  PayloadWriter w;
  w.put_u32(index);
  encode_factorized_object(w, obj);
  return w.take();
}

std::pair<std::uint32_t, core::FactorizedObject> decode_partial(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const std::uint32_t index = r.get_u32();
  core::FactorizedObject obj = decode_factorized_object(r);
  r.expect_end();
  return {index, std::move(obj)};
}

// ---------------------------------------------------------------------------
// Error / overload
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_error(ErrorCode code,
                                       std::string_view message) {
  PayloadWriter w;
  w.put_u16(static_cast<std::uint16_t>(code));
  w.put_string(message);
  return w.take();
}

std::pair<ErrorCode, std::string> decode_error(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const auto code = static_cast<ErrorCode>(r.get_u16());
  std::string message = r.get_string();
  r.expect_end();
  return {code, std::move(message)};
}

std::vector<std::uint8_t> encode_overload(const OverloadInfo& info) {
  PayloadWriter w;
  w.put_u16(static_cast<std::uint16_t>(info.code));
  w.put_u32(info.queue_depth);
  w.put_u32(info.limit);
  w.put_string(info.detail);
  return w.take();
}

OverloadInfo decode_overload(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  OverloadInfo info;
  info.code = static_cast<OverloadCode>(r.get_u16());
  info.queue_depth = r.get_u32();
  info.limit = r.get_u32();
  info.detail = r.get_string();
  r.expect_end();
  return info;
}

}  // namespace factorhd::net
