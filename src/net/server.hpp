// NetServer: the non-blocking TCP front end over a
// service::FactorizationEngine — what turns the library into a servable
// system (ROADMAP item 3).
//
//                    event-loop thread (epoll, poll fallback)
//   accept ──► per-connection FrameParser ──► ping/stats answered inline
//                       │ factorize frame           ▲
//                       ▼                           │ write buffers,
//              AdmissionQueue (bounded min-heap,    │ timeouts,
//              oldest-deadline-first, per-client    │ outbox drain
//              quotas; rejects => overload frames)  │
//                       │ pop (dispatcher thread)   │
//                       ▼                           │
//              engine.submit() ──► future ──► completion workers:
//              future.get(), serialize kPartial*/kResult frames,
//              push to the outbox, wake the loop
//
// Concurrency shape: exactly one event-loop thread owns every socket and
// all connection state — no locks on the read/write paths. Work crosses
// threads only through the AdmissionQueue (loop → dispatcher) and the
// outbox (completion workers → loop, woken via a self-pipe). Per-client
// in-flight quotas are charged at admission and released on the loop
// thread when the response bytes reach the client's write buffer (or are
// dropped because the client vanished), so every admitted ticket releases
// exactly once.
//
// Robustness: bounded read buffers (FrameParser's max_payload), bounded
// write buffers (slow readers are disconnected at the limit), and an idle
// timeout keyed on protocol progress — a complete frame parsed or response
// bytes flushed — so a slow-loris client trickling a partial frame times
// out like a silent one. The fault suite (tests/test_net_faults.cpp)
// exercises all three over real sockets under TSan.
//
// Latency attribution: the server owns a service::Metrics set recording
// Stage::kNetRead / kAdmission / kNetWrite plus end-to-end completions, so
// network time is attributed exactly like the engine's pipeline stages.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/admission.hpp"
#include "net/protocol.hpp"
#include "service/engine.hpp"
#include "service/metrics.hpp"

namespace factorhd::net {

/// Readiness events a Poller reports for one fd.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Minimal readiness-notification interface: epoll on Linux, poll(2) as
/// the portable fallback. Both implementations are always compiled (and
/// unit-tested) where available; selection is ServerOptions::poller /
/// FACTORHD_NET_POLLER.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual void add(int fd, bool want_write) = 0;
  virtual void update(int fd, bool want_write) = 0;
  virtual void remove(int fd) = 0;
  /// Blocks up to `timeout_ms` and appends ready fds to `out`.
  virtual void wait(int timeout_ms, std::vector<PollEvent>& out) = 0;
  /// \return "epoll" or "poll" (diagnostics).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// \param prefer_epoll False forces the poll(2) implementation.
[[nodiscard]] std::unique_ptr<Poller> make_poller(bool prefer_epoll);

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (read it back from NetServer::port()). Env: FACTORHD_NET_PORT.
  std::uint16_t port = 0;
  /// Admission bounds. Env: FACTORHD_NET_ADMISSION_DEPTH /
  /// FACTORHD_NET_CLIENT_QUOTA.
  AdmissionConfig admission{};
  /// Disconnect a connection making no protocol progress (no complete
  /// frame parsed, no response bytes flushed) for this long.
  /// Env: FACTORHD_NET_IDLE_TIMEOUT_MS.
  std::size_t idle_timeout_ms = 30000;
  /// Per-frame payload bound (read side). Env: FACTORHD_NET_MAX_FRAME.
  std::size_t max_frame = kDefaultMaxPayload;
  /// Per-connection write-buffer bound; a client not draining its
  /// responses is disconnected here. Env: FACTORHD_NET_WRITE_BUF.
  std::size_t write_buffer_limit = 8u << 20;
  /// Admission deadline applied when a request carries no hint (us).
  std::uint32_t default_deadline_us = 1'000'000;
  /// Threads blocking on engine futures and serializing responses.
  std::size_t completion_workers = 2;
  /// False selects poll(2) even where epoll is available.
  /// Env: FACTORHD_NET_POLLER (epoll | poll).
  bool prefer_epoll = true;
};

/// ServerOptions with every FACTORHD_NET_* knob resolved from the
/// environment (see util::env_knobs() and docs/TUNING.md).
[[nodiscard]] ServerOptions server_options_from_env();

/// Server-side counters (beyond the Metrics stage histograms).
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t disconnects_idle = 0;      ///< idle/slow-loris timeout
  std::uint64_t disconnects_protocol = 0;  ///< framing violation
  std::uint64_t disconnects_overflow = 0;  ///< write-buffer limit
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t responses_dropped = 0;  ///< computed for a vanished client
};

class NetServer {
 public:
  /// \param engine Engine to serve; must outlive the server (the serve tool
  ///   stops the server before swapping engines).
  NetServer(service::FactorizationEngine& engine, ServerOptions opts);
  /// Stops (drains) if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event-loop / dispatcher / completion
  /// threads. \throws std::runtime_error On socket/bind/listen failure.
  void start();

  /// Graceful drain: stop accepting, reject new factorize frames with
  /// kShuttingDown, dispatch every already-admitted ticket, wait for the
  /// in-flight responses, flush write buffers, then join all threads.
  /// Idempotent.
  void stop();

  /// \return The bound TCP port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] bool running() const noexcept { return running_; }
  /// \return "epoll" or "poll" (after start()).
  [[nodiscard]] const char* poller_name() const noexcept;

  [[nodiscard]] ServerCounters counters() const;
  [[nodiscard]] AdmissionStats admission_stats() const {
    return admission_.stats();
  }
  /// Net-side stage latencies (kNetRead/kAdmission/kNetWrite) + completions.
  [[nodiscard]] service::MetricsSnapshot net_metrics() const {
    return net_metrics_.snapshot(admission_.size());
  }
  /// Human-readable net section appended to the serve tool's `stats`.
  [[nodiscard]] std::string stats_text() const;
  [[nodiscard]] const ServerOptions& options() const noexcept { return opts_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameParser parser;
    std::vector<std::uint8_t> write_buf;
    std::size_t write_off = 0;
    std::chrono::steady_clock::time_point last_progress;
    bool close_after_flush = false;
    bool want_write = false;  ///< current poller registration

    explicit Connection(std::size_t max_frame) : parser(max_frame) {}
  };

  /// Response bytes crossing from a completion worker (or the dispatcher's
  /// error path) back to the loop thread.
  struct Outgoing {
    std::uint64_t client_id = 0;
    std::vector<std::uint8_t> bytes;
    /// When set, appending (or dropping) this releases one admission slot.
    bool release_ticket = false;
    /// Future-ready time — start of the kNetWrite stage.
    std::chrono::steady_clock::time_point ready{};
    /// Ticket arrival time — end-to-end completion is measured from here.
    std::chrono::steady_clock::time_point arrival{};
  };

  /// One admitted request travelling dispatcher → completion worker.
  struct InFlight {
    Ticket ticket;
    std::future<core::FactorizeResult> future;
  };

  void event_loop();
  void dispatcher_loop();
  void completion_loop();

  void accept_ready();
  void handle_readable(Connection& conn);
  void handle_frame(Connection& conn, Frame&& frame,
                    std::chrono::steady_clock::time_point read_start);
  void flush_writes(Connection& conn);
  void append_response(Connection& conn, std::span<const std::uint8_t> bytes);
  void drain_outbox();
  void check_timeouts();
  void close_connection(std::uint64_t id, std::uint64_t* counter);
  void update_poll_interest(Connection& conn);
  void wake_loop();
  void push_outgoing(Outgoing&& out);

  service::FactorizationEngine& engine_;
  ServerOptions opts_;
  AdmissionQueue admission_;
  service::Metrics net_metrics_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<Poller> poller_;

  // Loop-thread-only state (no lock).
  std::unordered_map<std::uint64_t, Connection> conns_;
  std::unordered_map<int, std::uint64_t> fd_to_id_;
  std::uint64_t next_client_id_ = 1;

  // Cross-thread state.
  mutable std::mutex outbox_mu_;
  std::vector<Outgoing> outbox_;
  std::mutex completion_mu_;
  std::condition_variable completion_cv_;
  std::deque<InFlight> completion_queue_;
  bool completion_closed_ = false;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> loop_exit_{false};
  bool running_ = false;
  bool stopped_ = false;

  std::thread loop_thread_;
  std::thread dispatcher_thread_;
  std::vector<std::thread> completion_threads_;
};

}  // namespace factorhd::net
