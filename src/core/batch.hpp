// Multi-threaded batch factorization.
//
// The paper runs its factorization trials on a GPU with batch size 512;
// BatchFactorizer is the CPU counterpart: independent targets are
// factorized concurrently across a worker pool. Correctness relies on
// Factorizer::factorize being const and side-effect-free apart from the
// atomic similarity-op counters in hdc::ItemMemory; the packed word-plane
// scan backend — including its SIMD tier, which rides in on the
// hdc::ScanBackend the Factorizer was built with — is immutable after
// construction and shared read-only across workers, so it needs no further
// synchronization.
//
// Determinism contract (asserted by tests/test_batch_determinism.cpp):
// every target is factorized independently and results land at the
// target's input position, so factorize_all returns identical results for
// any num_threads and across repeated runs — thread scheduling only decides
// who computes an entry, never what it contains.
#pragma once

#include <cstddef>
#include <vector>

#include "core/factorizer.hpp"
#include "hdc/hypervector.hpp"

namespace factorhd::core {

struct BatchOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency() (min 1).
  std::size_t num_threads = 0;
};

class BatchFactorizer {
 public:
  /// Non-owning view; `factorizer` must outlive this object.
  explicit BatchFactorizer(const Factorizer& factorizer,
                           BatchOptions opts = {}) noexcept
      : factorizer_(&factorizer), opts_(opts) {}

  /// Factorizes every target with the same options; results are returned in
  /// input order. Propagates the first worker exception, if any.
  ///
  /// Single-object batches (!opts.multi_object) are partitioned into fixed
  /// contiguous slices, one per worker, each running
  /// Factorizer::factorize_block — the class-major blocked scan that streams
  /// every level-1 codebook once per slice instead of once per target.
  /// factorize_block is bit-identical per target to factorize, so results
  /// (and the determinism contract above) are unchanged. Multi-object
  /// batches keep the dynamic per-target work queue.
  /// \param targets Independent encoded targets (any mix of Rep 1/2/3).
  /// \param opts Options applied to every target.
  /// \return One FactorizeResult per target, in input order.
  /// \throws Any exception thrown by Factorizer::factorize on a worker.
  [[nodiscard]] std::vector<FactorizeResult> factorize_all(
      const std::vector<hdc::Hypervector>& targets,
      const FactorizeOptions& opts = {}) const;

  /// Threads that factorize_all will actually use for a given batch size.
  /// \param batch Number of targets in the batch.
  /// \return min(configured threads, batch), clamped to at least 1 — also
  ///   for batch == 0, where factorize_all returns empty without spawning
  ///   any worker (the 1 is the sequential caller thread itself).
  [[nodiscard]] std::size_t effective_threads(std::size_t batch) const;

 private:
  const Factorizer* factorizer_;
  BatchOptions opts_;
};

}  // namespace factorhd::core
