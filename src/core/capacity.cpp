#include "core/capacity.hpp"

#include <cmath>
#include <stdexcept>

namespace factorhd::core {

namespace {

double binomial(std::size_t n, std::size_t k) {
  double acc = 1.0;
  for (std::size_t i = 1; i <= k; ++i) {
    acc *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return acc;
}

double std_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double clause_density(std::size_t k) {
  if (k == 0) throw std::invalid_argument("clause_density: empty clause");
  if (k % 2 == 1) return 1.0;
  return 1.0 - binomial(k, k / 2) / std::pow(2.0, static_cast<double>(k));
}

double clause_member_correlation(std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("clause_member_correlation: empty clause");
  }
  // E[clip(sum)_i * a_i] with a one of the k members: condition on the sum of
  // the other k-1 members; the clip follows a whenever they tie or fall
  // within ±1, giving C(k-1, floor((k-1)/2)) / 2^(k-1).
  const std::size_t n = k - 1;
  return binomial(n, n / 2) / std::pow(2.0, static_cast<double>(n));
}

double argmax_win_probability(double signal, double sigma,
                              std::size_t competitors) {
  if (competitors == 0) return 1.0;
  if (sigma <= 0.0) return signal > 0.0 ? 1.0 : 0.0;
  // P = E_{t~N(0,1)} [ Phi((signal + sigma*t)/sigma)^competitors ]:
  // the true candidate's own fluctuation is integrated by Gauss-Hermite-like
  // trapezoid quadrature over ±6 sigma (signal and competitor noises share
  // the same variance scale to leading order).
  const int steps = 241;
  const double lo = -6.0, hi = 6.0;
  const double h = (hi - lo) / (steps - 1);
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t = lo + h * i;
    const double weight =
        std::exp(-0.5 * t * t) / std::sqrt(2.0 * M_PI) * h *
        (i == 0 || i == steps - 1 ? 0.5 : 1.0);
    const double per_rival = std_normal_cdf((signal + sigma * t) / sigma);
    acc += weight * std::pow(per_rival, static_cast<double>(competitors));
  }
  return acc;
}

namespace {

/// Win probability under the support-conditioned model. The unbound vector u
/// is nonzero on a random support of density q = Π d_k; *within* the support
/// it agrees with the true item with per-dimension correlation
/// c_rel = (Π c_k)/q, while a competitor sees N(0, sqrt(s)) dot-product
/// noise over a realized support of size s. Conditioning on s is what makes
/// the model accurate near the knee: a small support weakens the signal and
/// the rivals' noise floor *together* (they share u), which an independent-
/// noise model misses.
///
///   P_win = E_{s ~ Bin(D, q)} E_{g ~ N(0,1)}
///           [ Phi(c_rel * sqrt(s) + g * sqrt(1 - c_rel^2))^rivals ]
double support_conditioned_win(double q, double c_rel, std::size_t dim,
                               std::size_t rivals) {
  if (rivals == 0) return 1.0;
  const double mean_s = q * static_cast<double>(dim);
  const double sd_s = std::sqrt(q * (1.0 - q) * static_cast<double>(dim));
  const double fluct = std::sqrt(std::max(0.0, 1.0 - c_rel * c_rel));

  auto win_given_s = [&](double s) {
    if (s <= 1.0) return 0.0;  // no usable support left
    const double z = c_rel * std::sqrt(s);
    if (fluct < 1e-12) {
      return std::pow(std_normal_cdf(z), static_cast<double>(rivals));
    }
    const int steps = 121;
    const double lo = -6.0, hi = 6.0;
    const double h = (hi - lo) / (steps - 1);
    double acc = 0.0;
    for (int i = 0; i < steps; ++i) {
      const double g = lo + h * i;
      const double weight = std::exp(-0.5 * g * g) / std::sqrt(2.0 * M_PI) *
                            h * (i == 0 || i == steps - 1 ? 0.5 : 1.0);
      acc += weight * std::pow(std_normal_cdf(z + g * fluct),
                               static_cast<double>(rivals));
    }
    return acc;
  };

  if (sd_s < 1e-12) return win_given_s(mean_s);
  const int steps = 41;
  const double lo = -5.0, hi = 5.0;
  const double h = (hi - lo) / (steps - 1);
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t = lo + h * i;
    const double weight = std::exp(-0.5 * t * t) / std::sqrt(2.0 * M_PI) * h *
                          (i == 0 || i == steps - 1 ? 0.5 : 1.0);
    acc += weight * win_given_s(mean_s + t * sd_s);
  }
  return acc;
}

}  // namespace

double predicted_class_accuracy(const CapacityProblem& p) {
  if (p.branching.empty() || p.num_classes == 0 || p.dim == 0) {
    throw std::invalid_argument("predicted_class_accuracy: bad problem");
  }
  // Clause size: label + one item per level (all classes share the shape).
  const std::size_t k = 1 + p.branching.size();
  const double c = clause_member_correlation(k);
  const double d = clause_density(k);
  double signal = c;
  double q = d;
  for (std::size_t j = 1; j < p.num_classes; ++j) {
    signal *= c;
    q *= d;
  }
  const double c_rel = signal / q;

  double acc = 1.0;
  for (std::size_t level = 0; level < p.branching.size(); ++level) {
    // Level 1 contests the full level-1 codebook (+ NULL); deeper levels are
    // child-restricted searches over branching[level] candidates.
    std::size_t rivals = p.branching[level] - 1;
    if (level == 0 && p.with_null) ++rivals;
    acc *= support_conditioned_win(q, c_rel, p.dim, rivals);
  }
  return acc;
}

double predicted_object_accuracy(const CapacityProblem& p) {
  return std::pow(predicted_class_accuracy(p),
                  static_cast<double>(p.num_classes));
}

std::size_t required_dimension(CapacityProblem p, double target) {
  std::size_t lo = 64, hi = std::size_t{1} << 22;
  p.dim = hi;
  if (predicted_object_accuracy(p) < target) return 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    p.dim = mid;
    if (predicted_object_accuracy(p) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace factorhd::core
