// FactorHD public API umbrella header.
//
// Typical use:
//
//   util::Xoshiro256 rng(seed);
//   tax::Taxonomy taxonomy(/*num_classes=*/3, /*branching=*/{256, 10});
//   tax::TaxonomyCodebooks books(taxonomy, /*dim=*/1000, rng);
//   core::Encoder encoder(books);
//   core::Factorizer factorizer(encoder);
//
//   hdc::Hypervector target = encoder.encode_scene(scene);
//   core::FactorizeOptions opts;
//   opts.multi_object = scene.size() > 1;
//   auto result = factorizer.factorize(target, opts);
#pragma once

#include "core/batch.hpp"       // IWYU pragma: export
#include "core/capacity.hpp"    // IWYU pragma: export
#include "core/encoder.hpp"     // IWYU pragma: export
#include "core/factorizer.hpp"  // IWYU pragma: export
#include "core/soft_encoder.hpp"  // IWYU pragma: export
#include "core/threshold.hpp"   // IWYU pragma: export
#include "hdc/hdc.hpp"          // IWYU pragma: export
#include "taxonomy/codebooks.hpp"  // IWYU pragma: export
#include "taxonomy/generator.hpp"  // IWYU pragma: export
#include "taxonomy/io.hpp"         // IWYU pragma: export
#include "taxonomy/names.hpp"      // IWYU pragma: export
#include "taxonomy/object.hpp"     // IWYU pragma: export
#include "taxonomy/taxonomy.hpp"   // IWYU pragma: export
