#include "core/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "taxonomy/generator.hpp"

namespace factorhd::core {

double predicted_threshold(const ThresholdProblem& p) noexcept {
  const double n = static_cast<double>(p.num_objects);
  const double f = static_cast<double>(p.num_classes);
  const double d = static_cast<double>(p.dim);
  const double m = static_cast<double>(p.codebook_size);
  return 0.001 * (104.0 + 2.0 * n - 15.0 * f - 0.001 * d - std::log(m));
}

CalibrationResult calibrate_threshold(const ThresholdProblem& problem,
                                      const CalibrationOptions& opts,
                                      double plateau_tolerance) {
  // Single-subclass-level Rep-3 setup matching the paper's Fig. 3 protocol:
  // N distinct objects over F classes of M items each, encoded as one scene
  // HV; a trial succeeds when the factorizer recovers the exact multiset.
  tax::Taxonomy taxonomy(problem.num_classes, {problem.codebook_size});
  util::Xoshiro256 rng(opts.seed);
  tax::TaxonomyCodebooks books(taxonomy, problem.dim, rng);
  Encoder encoder(books);
  Factorizer factorizer(encoder);

  // Pre-draw the trial scenes once so every TH grid point sees the *same*
  // problems; this removes sampling noise from the comparison between
  // neighbouring thresholds.
  tax::SceneGenOptions scene_opts;
  scene_opts.num_objects = problem.num_objects;
  scene_opts.allow_duplicates = false;
  std::vector<tax::Scene> scenes;
  std::vector<hdc::Hypervector> targets;
  scenes.reserve(opts.trials_per_point);
  targets.reserve(opts.trials_per_point);
  for (std::size_t i = 0; i < opts.trials_per_point; ++i) {
    scenes.push_back(tax::random_scene(taxonomy, rng, scene_opts));
    targets.push_back(encoder.encode_scene(scenes.back()));
  }

  CalibrationResult result;
  for (double th = opts.th_min; th <= opts.th_max + 1e-12;
       th += opts.th_step) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < opts.trials_per_point; ++i) {
      FactorizeOptions fo;
      fo.multi_object = true;
      fo.threshold = th;
      fo.max_objects = problem.num_objects + 2;
      const FactorizeResult fr = factorizer.factorize(targets[i], fo);
      tax::Scene recovered;
      recovered.reserve(fr.objects.size());
      for (const FactorizedObject& o : fr.objects) {
        recovered.push_back(o.to_object(taxonomy.num_classes()));
      }
      if (tax::same_multiset(recovered, scenes[i])) ++correct;
    }
    const double acc = static_cast<double>(correct) /
                       static_cast<double>(opts.trials_per_point);
    result.sweep.push_back({th, acc});
    result.best_accuracy = std::max(result.best_accuracy, acc);
  }
  // The accuracy curve is typically a plateau rather than a sharp peak;
  // report the plateau's extent and take its midpoint as TH*. The *longest
  // contiguous run* within tolerance of the best is used, so an isolated
  // lucky point outside the operating range cannot hijack the estimate.
  std::size_t run_start = 0, run_len = 0, best_start = 0, best_len = 0;
  for (std::size_t i = 0; i <= result.sweep.size(); ++i) {
    const bool in_plateau =
        i < result.sweep.size() &&
        result.sweep[i].accuracy >= result.best_accuracy - plateau_tolerance;
    if (in_plateau) {
      if (run_len == 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_len = 0;
    }
  }
  if (best_len > 0) {
    result.plateau_lo = result.sweep[best_start].threshold;
    result.plateau_hi = result.sweep[best_start + best_len - 1].threshold;
    result.best_threshold = 0.5 * (result.plateau_lo + result.plateau_hi);
  }
  return result;
}

}  // namespace factorhd::core
