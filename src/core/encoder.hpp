// FactorHD symbolic encoder (the paper's §III-A).
//
// An object is encoded in *bundling-binding-bundling* form:
//
//   H = (LABEL_1 + a_1j + a_1jk + ...) ⊙ (LABEL_2 + ...) ⊙ ... ⊙ (LABEL_F + ...)
//
// Every class contributes one bundling clause containing its redundant class
// label (the "memorization clause") plus the object's item HV at each
// subclass level along its path; classes the object does not possess
// contribute (LABEL_i + NULL). Clause values of a single object are clipped
// to the ternary alphabet {-1, 0, +1}; scenes (multiple objects) are encoded
// as the un-clipped Z^D bundle of their object HVs.
//
// Two encoding ablations are exposed for the design-choice benches:
// dropping the redundant label (which breaks label-based unbinding) and
// dropping the ternary clip (which changes the storage class).
#pragma once

#include <cstddef>

#include "hdc/hypervector.hpp"
#include "taxonomy/codebooks.hpp"
#include "taxonomy/object.hpp"

namespace factorhd::core {

struct EncodeOptions {
  /// Include the redundant class label in every clause (the memorization
  /// clause). Turning this off reproduces a plain C-C-style product and is
  /// used only by the encoding ablation bench.
  bool include_labels = true;
  /// Clip single-object clause bundles to {-1, 0, +1}.
  bool clip_ternary = true;
};

class Encoder {
 public:
  /// Non-owning view; `books` must outlive the encoder.
  /// \param books Taxonomy HV material (labels, codebooks, NULL).
  /// \param opts Encoding ablation switches.
  explicit Encoder(const tax::TaxonomyCodebooks& books,
                   EncodeOptions opts = {}) noexcept
      : books_(&books), opts_(opts) {}

  [[nodiscard]] const tax::TaxonomyCodebooks& books() const noexcept {
    return *books_;
  }
  [[nodiscard]] const EncodeOptions& options() const noexcept { return opts_; }

  /// The bundling clause of one class for one object: LABEL + path items, or
  /// LABEL + NULL when the class is absent. Clipped per options.
  /// \param cls Class index.
  /// \param path The object's subclass path in `cls`, or nullopt when the
  ///   class is absent.
  /// \return The (clipped) clause HV.
  /// \throws std::invalid_argument On a bad class index or invalid path.
  [[nodiscard]] hdc::Hypervector encode_clause(
      std::size_t cls, const std::optional<tax::Path>& path) const;

  /// Full object HV: the bound product of all class clauses. Ternary when
  /// clipping is enabled.
  /// \param obj Object to encode.
  /// \return The object HV.
  /// \throws std::invalid_argument When the object is not valid for the
  ///   taxonomy.
  [[nodiscard]] hdc::Hypervector encode_object(const tax::Object& obj) const;

  /// Object HV with every path truncated to at most `depth` levels (used by
  /// the factorizer's level-by-level combination checks).
  /// \param obj Object to encode.
  /// \param depth Maximum number of levels kept per class path.
  /// \return The truncated-object HV.
  /// \throws std::invalid_argument When the object is not valid for the
  ///   taxonomy.
  [[nodiscard]] hdc::Hypervector encode_object_prefix(const tax::Object& obj,
                                                      std::size_t depth) const;

  /// Scene HV: Z^D bundle of the component object HVs.
  /// \param scene Scene whose objects are encoded and bundled.
  /// \return The (un-clipped) scene bundle.
  /// \throws std::invalid_argument On empty scenes or invalid member
  ///   objects.
  [[nodiscard]] hdc::Hypervector encode_scene(const tax::Scene& scene) const;

 private:
  const tax::TaxonomyCodebooks* books_;
  EncodeOptions opts_;
};

}  // namespace factorhd::core
