#include "core/encoder.hpp"

#include <stdexcept>

#include "hdc/ops.hpp"

namespace factorhd::core {

hdc::Hypervector Encoder::encode_clause(
    std::size_t cls, const std::optional<tax::Path>& path) const {
  hdc::Hypervector clause(books_->dim());
  if (opts_.include_labels) {
    hdc::accumulate(clause, books_->label(cls));
  }
  if (path) {
    for (std::size_t l = 1; l <= path->size(); ++l) {
      hdc::accumulate(clause, books_->item(cls, l, (*path)[l - 1]));
    }
  } else {
    hdc::accumulate(clause, books_->null_hv());
  }
  if (opts_.clip_ternary) hdc::clip_ternary_inplace(clause);
  return clause;
}

hdc::Hypervector Encoder::encode_object(const tax::Object& obj) const {
  return encode_object_prefix(obj, books_->taxonomy().max_depth());
}

hdc::Hypervector Encoder::encode_object_prefix(const tax::Object& obj,
                                               std::size_t depth) const {
  const tax::Taxonomy& t = books_->taxonomy();
  if (!obj.valid_for(t)) {
    throw std::invalid_argument("Encoder: object invalid for taxonomy");
  }
  hdc::Hypervector product;
  for (std::size_t c = 0; c < t.num_classes(); ++c) {
    std::optional<tax::Path> truncated = obj.maybe_path(c);
    if (truncated && truncated->size() > depth) {
      truncated->resize(depth);
    }
    hdc::Hypervector clause = encode_clause(c, truncated);
    if (product.empty()) {
      product = std::move(clause);
    } else {
      hdc::bind_inplace(product, clause);
    }
  }
  return product;
}

hdc::Hypervector Encoder::encode_scene(const tax::Scene& scene) const {
  if (scene.empty()) {
    throw std::invalid_argument("Encoder: empty scene");
  }
  hdc::Hypervector sum = encode_object(scene[0]);
  for (std::size_t i = 1; i < scene.size(); ++i) {
    hdc::accumulate(sum, encode_object(scene[i]));
  }
  return sum;
}

}  // namespace factorhd::core
