// Soft (probability-weighted) label encoding — the bridge between the neuro
// part and the symbolic part of the pipeline (paper Fig. 1(b), Table II).
//
// A classifier emits a probability vector over labels; the corresponding
// image HV is the probability-weighted bundle of the labels' FactorHD
// encodings, scaled to integers:
//
//   H_img = round(scale * Σ_c p_c · E(label_c))
//
// The dominant term is the predicted label's encoding; competing labels
// contribute proportional structured noise, which is exactly what makes the
// downstream factorization accuracy track (and slightly trail) the
// classifier's accuracy. Bundles of several images ("computation in
// superposition") are accumulated and rescaled back with `normalize_scale`
// before multi-object factorization so Eq. 2's threshold scale applies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/encoder.hpp"
#include "hdc/hypervector.hpp"
#include "taxonomy/object.hpp"

namespace factorhd::core {

struct SoftEncodeOptions {
  /// Integer scale of the analog bundle (quantization resolution).
  double scale = 64.0;
  /// Labels below this probability are dropped (noise floor / speed).
  double min_probability = 0.02;
};

class SoftLabelEncoder {
 public:
  /// Pre-encodes one tax::Object per label class; `label_objects[c]` is the
  /// symbolic object for classifier output c.
  /// \param encoder Encoder used to pre-encode the label objects.
  /// \param label_objects One symbolic object per classifier label.
  /// \param opts Quantization scale and probability floor.
  /// \throws std::invalid_argument On an empty label set or invalid
  ///   objects.
  SoftLabelEncoder(const Encoder& encoder,
                   std::vector<tax::Object> label_objects,
                   SoftEncodeOptions opts = {});

  [[nodiscard]] std::size_t num_labels() const noexcept {
    return encodings_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept {
    return encodings_.empty() ? 0 : encodings_[0].dim();
  }
  [[nodiscard]] const SoftEncodeOptions& options() const noexcept {
    return opts_;
  }

  /// HV of one classified sample. Float overload matches nn::Mlp::softmax
  /// rows.
  /// \param probabilities Classifier output; size must equal num_labels().
  /// \return The probability-weighted integer bundle.
  /// \throws std::invalid_argument On a size mismatch.
  [[nodiscard]] hdc::Hypervector encode(
      std::span<const double> probabilities) const;
  [[nodiscard]] hdc::Hypervector encode(
      std::span<const float> probabilities) const;

  /// Divides an accumulated bundle of soft encodings by the configured
  /// scale (rounding), restoring the unit-signal range multi-object
  /// factorization thresholds expect.
  /// \param bundle Accumulated soft-encoding bundle, rescaled in place.
  void normalize_scale(hdc::Hypervector& bundle) const;

 private:
  std::vector<hdc::Hypervector> encodings_;
  SoftEncodeOptions opts_;
};

}  // namespace factorhd::core
