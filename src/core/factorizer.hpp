// FactorHD factorization (the paper's Algorithm 1 and Fig. 2).
//
// Given a target HV encoded by core::Encoder, recover the symbolic content:
//
//  * Single object (Rep 1 / Rep 2): for each selected class, bind the target
//    with the product of all *other* class labels — every unselected clause
//    collapses to ≈ identity, leaving the selected clause plus noise — then
//    one similarity pass over the class's level-1 codebook identifies the
//    subclass item (argmax, or NULL when the null HV wins). Deeper levels
//    are resolved top-down, restricting each search to the children of the
//    parent already factorized, which is what makes the cost O(N_M) rather
//    than O(M^F).
//
//  * Multiple objects (Rep 3): per class, *all* items with similarity above
//    the threshold TH are kept as candidates (avoiding the superposition
//    catastrophe of committing to one argmax). Candidate paths are grown
//    level by level under the same TH rule, then combined across classes;
//    the combination whose re-encoding is most similar to the residual (and
//    above TH) is declared an object, reconstructed, subtracted from the
//    residual, and the loop repeats until nothing passes TH. Working on the
//    residual keeps duplicate objects countable ("the problem of 2").
//
// Partial factorization — the paper's "only a subset of subclasses are of
// interest" — is supported through FactorizeOptions::selected_classes and
// max_depth; unselected classes are never searched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/encoder.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "taxonomy/codebooks.hpp"
#include "taxonomy/object.hpp"

namespace factorhd::core {

/// Pre-built tier indexes keyed by (class, 1-based level) — the payload of
/// a model snapshot sidecar (service layer) offered to the Factorizer so
/// construction can skip the k-means build for codebooks whose saved index
/// still matches. Each entry is verified against a fresh packing before
/// adoption (see hdc::ItemMemory), so a stale or mismatched snapshot can
/// only cost a rebuild, never a wrong scan.
using TierSnapshots =
    std::map<std::pair<std::size_t, std::size_t>,
             std::shared_ptr<const hdc::kernels::TieredItemMemory>>;

struct FactorizeOptions {
  /// Use the thresholded multi-object algorithm (Rep 3). When false the
  /// single-object argmax path (Rep 1/2) runs.
  bool multi_object = false;

  /// Threshold similarity TH for multi-object factorization. Values <= 0
  /// select the Eq. 2 prediction using `num_objects_hint`.
  double threshold = 0.0;

  /// N used by the Eq. 2 prediction when `threshold` <= 0. The algorithm
  /// itself never needs the true object count.
  std::size_t num_objects_hint = 2;

  /// Upper bound on objects extracted from a multi-object target.
  std::size_t max_objects = 16;

  /// Classes to factorize; empty means all classes. (Partial factorization.)
  std::vector<std::size_t> selected_classes;

  /// Deepest subclass level to resolve; 0 means the full taxonomy depth.
  std::size_t max_depth = 0;

  /// Cap on per-class candidate paths retained in multi-object mode, keeping
  /// the combination search bounded under adversarial thresholds.
  std::size_t max_candidates_per_class = 8;

  /// Record per-round diagnostics (multi-object mode) in
  /// FactorizeResult::trace — candidate counts, combination statistics,
  /// acceptance decisions. Off by default (allocation-free hot path).
  bool collect_trace = false;

  /// Force exact full-codebook scans for this call even when the
  /// Factorizer's item memories carry a tiered (approximate) index — the
  /// per-call accuracy override. No effect on exact backends. Without it,
  /// tiered scans are used where available and the multi-object loop
  /// re-scans a stalled round exactly before declaring convergence (see
  /// FactorizeResult::exact_rescans).
  bool exact_scan = false;

  /// Exact field-wise equality — the grouping relation of the serving
  /// layer's micro-batcher (requests batch together only under identical
  /// options) and part of its result-cache key.
  bool operator==(const FactorizeOptions&) const = default;
};

/// Diagnostics for one round of the multi-object loop (collect_trace).
struct RoundTrace {
  /// Thresholded candidate paths found per class (before the NULL option).
  std::vector<std::size_t> candidates_per_class;
  /// Classes whose NULL similarity passed TH this round.
  std::size_t null_candidates = 0;
  /// Combinations re-encoded and compared this round.
  std::size_t combinations = 0;
  /// Best combination similarity observed (0 when none were checked).
  double best_similarity = 0.0;
  /// True when the round accepted an object and subtracted it.
  bool accepted = false;

  bool operator==(const RoundTrace&) const = default;
};

/// Factorization outcome for one class of one object.
struct ClassFactorization {
  std::size_t cls = 0;
  /// False when the class was factorized as NULL (absent from the object).
  bool present = false;
  /// Item indices from level 1 down to the resolved depth (empty if absent).
  tax::Path path;
  /// Similarity measured when selecting each level's item (parallel to path).
  std::vector<double> level_similarities;
  /// Similarity of the unbound HV with the NULL hypervector.
  double null_similarity = 0.0;

  bool operator==(const ClassFactorization&) const = default;
};

struct FactorizedObject {
  std::vector<ClassFactorization> classes;
  /// Multi-object mode: similarity of the accepted combination's re-encoding
  /// with the residual at acceptance time. Unused (0) in single-object mode.
  double match_similarity = 0.0;

  /// Converts to a tax::Object over `num_classes` classes (unselected classes
  /// are left absent).
  [[nodiscard]] tax::Object to_object(std::size_t num_classes) const;

  bool operator==(const FactorizedObject&) const = default;
};

struct FactorizeResult {
  std::vector<FactorizedObject> objects;
  /// Codebook similarity measurements performed (the paper's efficiency unit).
  std::uint64_t similarity_ops = 0;
  /// Full-combination re-encode-and-compare checks performed (Rep 3 only).
  std::uint64_t combinations_checked = 0;
  /// True when the loop stopped because nothing above TH remained (rather
  /// than hitting max_objects).
  bool converged = true;
  /// Multi-object rounds that stalled under tiered (approximate) scans and
  /// were re-run with exact scans before concluding anything (0 on exact
  /// backends and under FactorizeOptions::exact_scan). A non-zero value
  /// means the tiered index missed candidates that round; the exact re-scan
  /// guarantees convergence is never declared on an approximation artifact.
  std::uint64_t exact_rescans = 0;
  /// Tiered coarse-stage buckets probed across all full-codebook scans (the
  /// sum of TieredItemMemory::ScanStats::probes). 0 on exact backends and
  /// under FactorizeOptions::exact_scan. Like similarity_ops, a pure
  /// function of (target, opts) — part of the bit-identity contract.
  std::uint64_t probes = 0;
  /// Residual subtract-and-repeat rounds executed in multi-object mode
  /// (each stalled round counts once even when it re-ran exactly). 0 in
  /// single-object mode.
  std::uint64_t rounds = 0;
  /// Per-round diagnostics; populated only when options.collect_trace.
  std::vector<RoundTrace> trace;

  /// Exact (bit-level, doubles included) equality — the relation in which
  /// the serving layer's differential tests state their "engine results are
  /// identical to direct factorize calls" guarantee.
  bool operator==(const FactorizeResult&) const = default;
};

class Factorizer {
 public:
  /// Non-owning view; `encoder` (and its codebooks) must outlive this.
  /// Builds one hdc::ItemMemory per (class, level) codebook on the requested
  /// scan backend; the default kAuto selects the packed word-plane kernels
  /// for the (bipolar) taxonomy codebooks, so single-object unbound queries
  /// (ternary/bipolar) run on XOR+popcount scans while integer residual
  /// queries of the multi-object loop fall back to scalar per call.
  /// \param encoder Encoder whose codebooks define the factorization problem.
  /// \param backend Scan-backend policy for every internal ItemMemory. The
  ///   forced hdc::ScanBackend::kPacked* values pin the packed kernels to
  ///   one SIMD tier (throwing when that tier is unavailable on this CPU) —
  ///   the knob the cross-backend differential tests run the whole
  ///   Algorithm 1 pipeline on. Under kAuto, codebooks at/above
  ///   FACTORHD_TIERED_MIN_ROWS rows additionally build the two-stage
  ///   tiered index (hdc::ScanBackend::kTiered forces it), making full
  ///   level-1 scans approximate; FactorizeOptions::exact_scan restores
  ///   exact scans per call and stalled multi-object rounds re-scan
  ///   exactly on their own.
  /// \throws std::invalid_argument When `backend` is kPacked but a codebook
  ///   is not packable (never the case for generated taxonomy codebooks),
  ///   or when a forced kPacked* SIMD level is unavailable on this CPU.
  ///
  /// \param snapshots Optional pre-built tier indexes per (class, level)
  ///   slot, offered to the matching ItemMemory constructions (adopt after
  ///   verification, else rebuild). Consulted only during construction; may
  ///   be null. Tally the outcome via snapshots_adopted() / rejected().
  ///   Whole-codebook snapshots are never adopted while sharding is active
  ///   (a partition needs per-shard indexes) and count as rejected.
  ///
  /// \param sharded Optional shard configuration threaded to every internal
  ///   ItemMemory (hdc::ScanBackend::kSharded semantics under kAuto: an
  ///   explicit config forces the scatter-gather partition; see
  ///   hdc::ItemMemory). Sharded scans stay bit-identical to unsharded ones
  ///   whenever the shards scan exact.
  explicit Factorizer(
      const Encoder& encoder,
      hdc::ScanBackend backend = hdc::ScanBackend::kAuto,
      const TierSnapshots* snapshots = nullptr,
      std::optional<hdc::kernels::ShardedConfig> sharded = std::nullopt);

  /// \return The backend the codebook scans resolved to: kScalar when any
  ///   internal ItemMemory fell back to scalar, else kSharded when any
  ///   memory scatter-gathers across a shard partition, else kTiered when
  ///   any memory carries the two-stage index (large codebooks under kAuto,
  ///   or an explicit kTiered backend), else kPacked.
  [[nodiscard]] hdc::ScanBackend scan_backend() const noexcept;

  /// \return True when any internal ItemMemory scans through a tiered
  ///   (approximate) index — directly or via per-shard tiers — the
  ///   condition under which the multi-object loop arms its
  ///   stall-triggered exact re-scan.
  [[nodiscard]] bool tiered() const noexcept;

  /// \return The scatter-gather shard count of the largest internal memory
  ///   partition: 1 when unsharded — the count service::FactorizationEngine
  ///   sizes its auto dispatcher pool (per-shard affinity) from.
  [[nodiscard]] std::size_t shards() const noexcept;

  /// \return Cumulative similarity measurements charged to each shard index
  ///   since construction, summed over every sharded internal memory
  ///   (shard s of every class/level partition contributes to slot s) —
  ///   the hot-shard visibility surface service::Metrics exports. Empty
  ///   when no memory is sharded. Relaxed-atomic reads; safe while
  ///   concurrent factorizations are running.
  [[nodiscard]] std::vector<std::uint64_t> shard_rows_scanned() const;

  /// \return The SIMD tier the packed codebook scans execute at (identical
  ///   across all internal memories); std::nullopt when scans are scalar.
  [[nodiscard]] std::optional<hdc::kernels::SimdLevel> simd_level()
      const noexcept;

  /// \return Offered snapshots adopted at construction (planes verified
  ///   bit-equal, k-means build skipped).
  [[nodiscard]] std::size_t snapshots_adopted() const noexcept {
    return snapshots_adopted_;
  }
  /// \return Offered snapshots rejected at construction (mismatched or for
  ///   a slot that builds no tier index) — each one cost a fresh build.
  [[nodiscard]] std::size_t snapshots_rejected() const noexcept {
    return snapshots_rejected_;
  }

  /// \return Every tier index this factorizer scans through, keyed by
  ///   (class, level) — what the model snapshot sidecar persists. Empty on
  ///   exact backends.
  [[nodiscard]] TierSnapshots tier_snapshots() const;

  /// Runs Algorithm 1 on `target` (an encoded object or scene).
  /// \param target Encoded object/scene HV of the codebooks' dimension.
  /// \param opts Mode, threshold, and partial-factorization options.
  /// \return Factorized objects plus cost counters and optional trace.
  /// \throws std::invalid_argument On target dimension mismatch or a
  ///   selected class index out of range.
  [[nodiscard]] FactorizeResult factorize(const hdc::Hypervector& target,
                                          const FactorizeOptions& opts = {}) const;

  /// Blocked batch variant of factorize(): one FactorizeResult per target,
  /// in input order, each bit-identical (objects, similarity_ops, every
  /// field) to the matching factorize(target, opts) call. Single-object
  /// batches restructure the loop class-by-class so each class's level-1
  /// codebook is scanned for the WHOLE batch in one blocked pass
  /// (hdc::ItemMemory::best_block, kernels::QueryBlockKernels underneath) —
  /// the codebook planes stream from memory once per batch instead of once
  /// per target, which is where large-codebook batches spend their time.
  /// Multi-object targets (whose residual loops are inherently sequential
  /// per target) run plain factorize() per target.
  /// \param targets Independent encoded targets.
  /// \param opts Options applied to every target.
  /// \return One result per target, in input order.
  /// \throws std::invalid_argument On any target dimension mismatch or a
  ///   selected class index out of range.
  [[nodiscard]] std::vector<FactorizeResult> factorize_block(
      std::span<const hdc::Hypervector> targets,
      const FactorizeOptions& opts = {}) const;

  /// Convenience: single-object factorization of every class at full depth.
  /// \param target Encoded object HV.
  /// \return The single factorized object.
  /// \throws std::invalid_argument On target dimension mismatch.
  [[nodiscard]] FactorizedObject factorize_single(
      const hdc::Hypervector& target) const;

  /// The effective TH the given options resolve to (Eq. 2 when unset).
  /// \param opts Options whose threshold/num_objects_hint are consulted.
  /// \return opts.threshold when positive, else the Eq. 2 prediction.
  [[nodiscard]] double effective_threshold(const FactorizeOptions& opts) const;

 private:
  struct CandidatePath {
    tax::Path path;
    std::vector<double> level_similarities;
  };
  /// Candidate decomposition of one class in multi-object mode: threshold-
  /// selected paths plus optional NULL evidence.
  struct ClassCandidates {
    std::vector<CandidatePath> paths;
    bool null_candidate = false;
    double null_similarity = 0.0;
  };

  [[nodiscard]] std::vector<std::size_t> resolve_classes(
      const FactorizeOptions& opts) const;
  [[nodiscard]] std::size_t resolve_depth(const FactorizeOptions& opts) const;

  /// Single-object top-down argmax factorization of one class. `mode`
  /// selects tiered vs exact level-1 scans (deeper levels are restricted
  /// best_among searches, exact on every backend). `probes` accumulates the
  /// tiered coarse-stage buckets probed (0 on exact scans).
  [[nodiscard]] ClassFactorization factorize_class_single(
      const hdc::Hypervector& unbound, std::size_t cls, std::size_t depth,
      hdc::ScanMode mode, std::uint64_t& sim_ops,
      std::uint64_t& probes) const;

  /// Completes a single-object class factorization from its level-1 argmax
  /// `top` — the NULL-vs-top decision plus the restricted level 2..depth
  /// descent. Shared by factorize_class_single and factorize_block so the
  /// blocked path is bit-identical to the per-target one by construction;
  /// cf.cls and cf.null_similarity must already be set.
  void descend_class_single(const hdc::Hypervector& unbound, std::size_t cls,
                            std::size_t depth, const hdc::Match& top,
                            ClassFactorization& cf,
                            std::uint64_t& sim_ops) const;

  /// Multi-object thresholded candidate enumeration for one class; `mode`
  /// selects tiered vs exact level-1 `above` scans. `probes` accumulates as
  /// in factorize_class_single.
  [[nodiscard]] ClassCandidates collect_candidates(
      const hdc::Hypervector& unbound, std::size_t cls, std::size_t depth,
      double th, std::size_t max_paths, hdc::ScanMode mode,
      std::uint64_t& sim_ops, std::uint64_t& probes) const;

  const Encoder* encoder_;
  const tax::TaxonomyCodebooks* books_;
  /// Item memories per class per level: memories_[cls][level-1].
  std::vector<std::vector<hdc::ItemMemory>> memories_;
  std::size_t snapshots_adopted_ = 0;
  std::size_t snapshots_rejected_ = 0;
};

}  // namespace factorhd::core
