#include "core/soft_encoder.hpp"

#include <cmath>
#include <stdexcept>

namespace factorhd::core {

SoftLabelEncoder::SoftLabelEncoder(const Encoder& encoder,
                                   std::vector<tax::Object> label_objects,
                                   SoftEncodeOptions opts)
    : opts_(opts) {
  if (label_objects.empty()) {
    throw std::invalid_argument("SoftLabelEncoder: no label objects");
  }
  if (opts_.scale <= 0.0) {
    throw std::invalid_argument("SoftLabelEncoder: scale must be positive");
  }
  encodings_.reserve(label_objects.size());
  for (const tax::Object& obj : label_objects) {
    encodings_.push_back(encoder.encode_object(obj));
  }
}

hdc::Hypervector SoftLabelEncoder::encode(
    std::span<const double> probabilities) const {
  if (probabilities.size() != encodings_.size()) {
    throw std::invalid_argument(
        "SoftLabelEncoder: probability count mismatch");
  }
  hdc::Hypervector out(dim());
  for (std::size_t c = 0; c < encodings_.size(); ++c) {
    const double p = probabilities[c];
    if (p < opts_.min_probability) continue;
    const auto* pe = encodings_[c].data();
    auto* po = out.data();
    const double w = opts_.scale * p;
    for (std::size_t d = 0; d < out.dim(); ++d) {
      po[d] += static_cast<hdc::Hypervector::value_type>(
          std::lround(w * pe[d]));
    }
  }
  return out;
}

hdc::Hypervector SoftLabelEncoder::encode(
    std::span<const float> probabilities) const {
  std::vector<double> p(probabilities.begin(), probabilities.end());
  return encode(std::span<const double>(p));
}

void SoftLabelEncoder::normalize_scale(hdc::Hypervector& bundle) const {
  auto* pb = bundle.data();
  for (std::size_t d = 0; d < bundle.dim(); ++d) {
    pb[d] = static_cast<hdc::Hypervector::value_type>(
        std::lround(static_cast<double>(pb[d]) / opts_.scale));
  }
}

}  // namespace factorhd::core
