// Threshold-similarity (TH) selection for multi-object factorization.
//
// The TH value separates "this item/combination is part of some object" from
// noise. The paper observes that the optimal TH* grows with the number of
// objects N, shrinks with the number of factors F, and varies roughly
// linearly with dimension D and log M, and fits Eq. 2:
//
//   TH* = 0.001 * (104 + 2N - 15F - 0.001D - ln M)
//
// `predicted_threshold` implements Eq. 2 verbatim; `calibrate_threshold`
// reproduces the grid-search procedure behind the paper's Fig. 3 (sweep TH,
// measure Rep-3 factorization accuracy, return the argmax).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace factorhd::core {

struct ThresholdProblem {
  std::size_t num_objects = 2;   ///< N
  std::size_t num_classes = 3;   ///< F
  std::size_t dim = 2000;        ///< D
  std::size_t codebook_size = 10;  ///< M (level-1 items per class)
};

/// Eq. 2 of the paper (natural logarithm; the log base is unstated in the
/// paper but the term is small for any reasonable base).
/// \param p Problem shape (N, F, D, M).
/// \return The predicted optimal threshold TH*.
[[nodiscard]] double predicted_threshold(const ThresholdProblem& p) noexcept;

struct CalibrationOptions {
  double th_min = 0.005;
  double th_max = 0.25;
  double th_step = 0.005;
  std::size_t trials_per_point = 32;
  std::uint64_t seed = 1;
};

struct CalibrationPoint {
  double threshold = 0.0;
  double accuracy = 0.0;
};

struct CalibrationResult {
  /// Midpoint of the highest-accuracy plateau (the empirical TH*). When the
  /// accuracy curve has a unique peak this is the argmax; when a range of
  /// thresholds ties within `plateau_tolerance`, the centre of that range.
  double best_threshold = 0.0;
  double best_accuracy = 0.0;
  /// Extent of the usable plateau: thresholds whose accuracy is within
  /// `plateau_tolerance` of the best.
  double plateau_lo = 0.0;
  double plateau_hi = 0.0;
  std::vector<CalibrationPoint> sweep;
};

/// Empirical TH* for a Rep-3 problem (single subclass level): sweeps TH over
/// the configured grid, measuring exact-scene-recovery accuracy at each
/// point. Deterministic given `opts.seed`.
/// \param problem Problem shape (N, F, D, M).
/// \param opts Grid range/step, trials per point, and seed.
/// \param plateau_tolerance Accuracy slack for plateau membership.
/// \return Best threshold, accuracy, plateau extent, and the full sweep.
[[nodiscard]] CalibrationResult calibrate_threshold(
    const ThresholdProblem& problem, const CalibrationOptions& opts = {},
    double plateau_tolerance = 0.011);

}  // namespace factorhd::core
