// Analytic capacity model for FactorHD single-object factorization.
//
// Predicts factorization accuracy from the encoding geometry, without
// running trials. The derivation tracks the paper's encoding exactly:
//
//  * A clause bundling k bipolar HVs, clipped to {-1,0,+1}, has nonzero
//    density d_k (1 for odd k, 1 - C(k,k/2)/2^k for even k) and correlation
//    c_k = C(k-1, floor((k-1)/2)) / 2^(k-1) with each of its members
//    (c_2 = c_3 = 1/2, c_4 = 3/8, ...).
//  * Unbinding all other labels leaves u = clause_i ⊙ Π_{j≠i}(clause_j⊙L_j);
//    the similarity of u with the true item is s = Π_j c_{k_j}, while a
//    competing item sees zero-mean noise of variance (Π_j d_{k_j}) / D.
//  * Per-level accuracy is the probability the true item wins the argmax
//    against (m-1) competitors plus the NULL vector, evaluated by Gaussian
//    quadrature; object accuracy is the product over classes and levels.
//
// The model is validated against measurement in bench_ext_capacity; it is
// also useful in its own right for choosing the smallest D that meets an
// accuracy target (`required_dimension`).
#pragma once

#include <cstddef>
#include <vector>

namespace factorhd::core {

/// Nonzero density d_k of a clipped bundle of k random bipolar HVs.
/// \param k Number of bundled HVs (k >= 1).
/// \return Probability that a clipped-bundle component is nonzero.
/// \throws std::invalid_argument When k is zero.
[[nodiscard]] double clause_density(std::size_t k);

/// Correlation c_k = E[clip(sum of k bipolar HVs)_i * member_i].
/// \param k Number of bundled HVs (k >= 1).
/// \return The member correlation (c_1 = 1, c_2 = c_3 = 1/2, ...).
/// \throws std::invalid_argument When k is zero.
[[nodiscard]] double clause_member_correlation(std::size_t k);

struct CapacityProblem {
  std::size_t dim = 1024;          ///< D
  std::size_t num_classes = 3;     ///< F
  /// Items per level within each class (uniform shape), e.g. {256, 10}.
  std::vector<std::size_t> branching{16};
  /// True when absent classes are possible (adds the NULL competitor).
  bool with_null = true;
};

/// Probability that the correct candidate wins an argmax against
/// `competitors` independent rivals.
/// \param signal Mean similarity of the true candidate.
/// \param sigma Noise standard deviation (similarity units).
/// \param competitors Number of independent rival candidates.
/// \return Win probability in [0, 1].
[[nodiscard]] double argmax_win_probability(double signal, double sigma,
                                            std::size_t competitors);

/// Predicted probability that one class's full path factorizes correctly.
/// \param p Encoding geometry.
/// \return Per-class accuracy in [0, 1].
[[nodiscard]] double predicted_class_accuracy(const CapacityProblem& p);

/// Predicted probability that the whole object factorizes correctly
/// (all F classes, all levels).
/// \param p Encoding geometry.
/// \return Object accuracy in [0, 1].
[[nodiscard]] double predicted_object_accuracy(const CapacityProblem& p);

/// Smallest dimension whose predicted object accuracy reaches `target`
/// (binary search over [64, 1<<22]).
/// \param p Encoding geometry; its `dim` field is the search variable.
/// \param target Required object accuracy in (0, 1).
/// \return The smallest sufficient dimension, or 0 if unreachable.
[[nodiscard]] std::size_t required_dimension(CapacityProblem p, double target);

}  // namespace factorhd::core
