#include "core/factorizer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/threshold.hpp"
#include "hdc/ops.hpp"
#include "hdc/similarity.hpp"

namespace factorhd::core {

tax::Object FactorizedObject::to_object(std::size_t num_classes) const {
  tax::Object obj(num_classes);
  for (const auto& cf : classes) {
    if (cf.present) obj.set_path(cf.cls, cf.path);
  }
  return obj;
}

Factorizer::Factorizer(const Encoder& encoder, hdc::ScanBackend backend,
                       const TierSnapshots* snapshots,
                       std::optional<hdc::kernels::ShardedConfig> sharded)
    : encoder_(&encoder), books_(&encoder.books()) {
  const tax::Taxonomy& t = books_->taxonomy();
  memories_.resize(t.num_classes());
  for (std::size_t c = 0; c < t.num_classes(); ++c) {
    memories_[c].reserve(t.depth(c));
    for (std::size_t l = 1; l <= t.depth(c); ++l) {
      std::shared_ptr<const hdc::kernels::TieredItemMemory> offered;
      if (snapshots != nullptr) {
        const auto it = snapshots->find({c, l});
        if (it != snapshots->end()) offered = it->second;
      }
      memories_[c].emplace_back(books_->level_codebook(c, l), backend,
                                std::nullopt, offered, sharded);
      if (offered != nullptr) {
        // Adoption is pointer identity: the memory either took the offered
        // index as-is or rebuilt its own.
        if (memories_[c].back().tiered() == offered.get()) {
          ++snapshots_adopted_;
        } else {
          ++snapshots_rejected_;
        }
      }
    }
  }
}

TierSnapshots Factorizer::tier_snapshots() const {
  TierSnapshots out;
  for (std::size_t c = 0; c < memories_.size(); ++c) {
    for (std::size_t i = 0; i < memories_[c].size(); ++i) {
      if (auto tier = memories_[c][i].shared_tiered()) {
        out.emplace(std::make_pair(c, i + 1), std::move(tier));
      }
    }
  }
  return out;
}

hdc::ScanBackend Factorizer::scan_backend() const noexcept {
  bool any_tiered = false;
  bool any_sharded = false;
  bool any = false;
  for (const auto& per_class : memories_) {
    for (const hdc::ItemMemory& m : per_class) {
      any = true;
      switch (m.backend()) {
        case hdc::ScanBackend::kSharded:
          any_sharded = true;
          break;
        case hdc::ScanBackend::kTiered:
          any_tiered = true;
          break;
        case hdc::ScanBackend::kPacked:
          break;
        default:
          return hdc::ScanBackend::kScalar;
      }
    }
  }
  if (!any) return hdc::ScanBackend::kScalar;
  if (any_sharded) return hdc::ScanBackend::kSharded;
  return any_tiered ? hdc::ScanBackend::kTiered : hdc::ScanBackend::kPacked;
}

bool Factorizer::tiered() const noexcept {
  for (const auto& per_class : memories_) {
    for (const hdc::ItemMemory& m : per_class) {
      if (m.backend() == hdc::ScanBackend::kTiered) return true;
      // Per-shard tiers approximate the same way a single tier does, so
      // they arm the same stall-triggered exact re-scan.
      if (m.backend() == hdc::ScanBackend::kSharded &&
          m.sharded()->tiered_shards()) {
        return true;
      }
    }
  }
  return false;
}

std::size_t Factorizer::shards() const noexcept {
  std::size_t shards = 1;
  for (const auto& per_class : memories_) {
    for (const hdc::ItemMemory& m : per_class) {
      if (m.sharded() != nullptr) {
        shards = std::max(shards, m.sharded()->shards());
      }
    }
  }
  return shards;
}

std::vector<std::uint64_t> Factorizer::shard_rows_scanned() const {
  std::vector<std::uint64_t> out;
  for (const auto& per_class : memories_) {
    for (const hdc::ItemMemory& m : per_class) {
      const auto* sh = m.sharded();
      if (sh == nullptr) continue;
      const std::vector<std::uint64_t> counts = sh->shard_rows_scanned();
      if (counts.size() > out.size()) out.resize(counts.size(), 0);
      for (std::size_t s = 0; s < counts.size(); ++s) out[s] += counts[s];
    }
  }
  return out;
}

std::optional<hdc::kernels::SimdLevel> Factorizer::simd_level() const noexcept {
  // All memories are built with the same ScanBackend, but under kAuto a
  // non-packable codebook can leave individual memories scalar — report the
  // tier of the first memory that actually packed, nullopt when none did.
  for (const auto& per_class : memories_) {
    for (const hdc::ItemMemory& m : per_class) {
      if (const auto level = m.simd_level()) return level;
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> Factorizer::resolve_classes(
    const FactorizeOptions& opts) const {
  const std::size_t f = books_->taxonomy().num_classes();
  if (opts.selected_classes.empty()) {
    std::vector<std::size_t> all(f);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }
  for (std::size_t c : opts.selected_classes) {
    if (c >= f) {
      throw std::invalid_argument("Factorizer: selected class out of range");
    }
  }
  return opts.selected_classes;
}

std::size_t Factorizer::resolve_depth(const FactorizeOptions& opts) const {
  const std::size_t d = books_->taxonomy().max_depth();
  if (opts.max_depth == 0) return d;
  return std::min(opts.max_depth, d);
}

double Factorizer::effective_threshold(const FactorizeOptions& opts) const {
  if (opts.threshold > 0.0) return opts.threshold;
  ThresholdProblem p;
  p.num_objects = opts.num_objects_hint;
  p.num_classes = books_->taxonomy().num_classes();
  p.dim = books_->dim();
  p.codebook_size = books_->taxonomy().max_level1_size();
  return predicted_threshold(p);
}

ClassFactorization Factorizer::factorize_class_single(
    const hdc::Hypervector& unbound, std::size_t cls, std::size_t depth,
    hdc::ScanMode mode, std::uint64_t& sim_ops, std::uint64_t& probes) const {
  ClassFactorization cf;
  cf.cls = cls;
  cf.null_similarity = hdc::similarity(unbound, books_->null_hv());
  ++sim_ops;

  std::uint64_t scanned = 0;
  std::uint64_t scan_probes = 0;
  const hdc::Match top =
      memories_[cls][0].best(unbound, mode, &scanned, &scan_probes);
  sim_ops += scanned;
  probes += scan_probes;
  descend_class_single(unbound, cls, depth, top, cf, sim_ops);
  return cf;
}

void Factorizer::descend_class_single(const hdc::Hypervector& unbound,
                                      std::size_t cls, std::size_t depth,
                                      const hdc::Match& top,
                                      ClassFactorization& cf,
                                      std::uint64_t& sim_ops) const {
  if (cf.null_similarity > top.similarity) {
    cf.present = false;  // the class is not part of the object
    return;
  }
  cf.present = true;
  cf.path.push_back(top.index);
  cf.level_similarities.push_back(top.similarity);

  const tax::Taxonomy& t = books_->taxonomy();
  const std::size_t class_depth = std::min(depth, t.depth(cls));
  for (std::size_t l = 2; l <= class_depth; ++l) {
    // Restrict the level-l search to children of the level-(l-1) item: the
    // hierarchy is known a priori, so only branching[l-1] similarities are
    // needed instead of level_size(l).
    const std::vector<std::size_t> kids =
        t.children_of(cls, l - 1, cf.path.back());
    const hdc::Match m = memories_[cls][l - 1].best_among(unbound, kids);
    sim_ops += kids.size();
    cf.path.push_back(m.index);
    cf.level_similarities.push_back(m.similarity);
  }
}

std::vector<FactorizeResult> Factorizer::factorize_block(
    std::span<const hdc::Hypervector> targets,
    const FactorizeOptions& opts) const {
  std::vector<FactorizeResult> results(targets.size());
  if (targets.empty()) return results;
  if (opts.multi_object) {
    // The residual subtract-and-repeat loop is sequential per target;
    // nothing to block across.
    for (std::size_t i = 0; i < targets.size(); ++i) {
      results[i] = factorize(targets[i], opts);
    }
    return results;
  }
  for (const hdc::Hypervector& target : targets) {
    if (target.dim() != books_->dim()) {
      throw std::invalid_argument("Factorizer: target dimension mismatch");
    }
  }
  const std::vector<std::size_t> report_classes = resolve_classes(opts);
  const std::size_t report_depth = resolve_depth(opts);
  const hdc::ScanMode mode =
      opts.exact_scan ? hdc::ScanMode::kExact : hdc::ScanMode::kDefault;

  for (FactorizeResult& r : results) {
    r.objects.emplace_back();
    r.objects.front().classes.reserve(report_classes.size());
  }

  // Class-outer, target-inner: every target's class-cls unbinding is scanned
  // against the class's level-1 codebook in one blocked pass, so the planes
  // stream from memory once per batch. Deeper levels are per-target
  // restricted best_among searches (a handful of rows each). sim_ops sums
  // the exact same per-call counts as factorize, just in class-major order.
  std::vector<hdc::Hypervector> unbound;
  unbound.reserve(targets.size());
  std::vector<std::uint64_t> scanned(targets.size());
  std::vector<std::uint64_t> scan_probes(targets.size());
  for (std::size_t cls : report_classes) {
    unbound.clear();
    for (const hdc::Hypervector& target : targets) {
      unbound.push_back(hdc::bind(target, books_->other_labels_key(cls)));
    }
    const std::vector<hdc::Match> tops = memories_[cls][0].best_block(
        unbound, mode, scanned.data(), scan_probes.data());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ClassFactorization cf;
      cf.cls = cls;
      cf.null_similarity = hdc::similarity(unbound[i], books_->null_hv());
      results[i].similarity_ops += 1 + scanned[i];
      results[i].probes += scan_probes[i];
      descend_class_single(unbound[i], cls, report_depth, tops[i], cf,
                           results[i].similarity_ops);
      results[i].objects.front().classes.push_back(std::move(cf));
    }
  }
  return results;
}

Factorizer::ClassCandidates Factorizer::collect_candidates(
    const hdc::Hypervector& unbound, std::size_t cls, std::size_t depth,
    double th, std::size_t max_paths, hdc::ScanMode mode,
    std::uint64_t& sim_ops, std::uint64_t& probes) const {
  ClassCandidates out;
  out.null_similarity = hdc::similarity(unbound, books_->null_hv());
  ++sim_ops;
  out.null_candidate = out.null_similarity > th;

  std::uint64_t scanned = 0;
  std::uint64_t scan_probes = 0;
  std::vector<hdc::Match> level1 =
      memories_[cls][0].above(unbound, th, mode, &scanned, &scan_probes);
  sim_ops += scanned;
  probes += scan_probes;
  if (level1.size() > max_paths) level1.resize(max_paths);

  std::vector<CandidatePath> frontier;
  frontier.reserve(level1.size());
  for (const hdc::Match& m : level1) {
    frontier.push_back({{m.index}, {m.similarity}});
  }

  const tax::Taxonomy& t = books_->taxonomy();
  const std::size_t class_depth = std::min(depth, t.depth(cls));
  for (std::size_t l = 2; l <= class_depth && !frontier.empty(); ++l) {
    std::vector<CandidatePath> next;
    for (const CandidatePath& cp : frontier) {
      const std::vector<std::size_t> kids =
          t.children_of(cls, l - 1, cp.path.back());
      const std::vector<hdc::Match> ms =
          memories_[cls][l - 1].above_among(unbound, th, kids);
      sim_ops += kids.size();
      for (const hdc::Match& m : ms) {
        CandidatePath ext = cp;
        ext.path.push_back(m.index);
        ext.level_similarities.push_back(m.similarity);
        next.push_back(std::move(ext));
      }
    }
    // Keep the strongest paths (by their deepest-level similarity) when the
    // frontier outgrows the cap.
    if (next.size() > max_paths) {
      std::sort(next.begin(), next.end(),
                [](const CandidatePath& a, const CandidatePath& b) {
                  return a.level_similarities.back() >
                         b.level_similarities.back();
                });
      next.resize(max_paths);
    }
    frontier = std::move(next);
  }
  out.paths = std::move(frontier);
  return out;
}

FactorizeResult Factorizer::factorize(const hdc::Hypervector& target,
                                      const FactorizeOptions& opts) const {
  if (target.dim() != books_->dim()) {
    throw std::invalid_argument("Factorizer: target dimension mismatch");
  }
  FactorizeResult result;
  const std::vector<std::size_t> report_classes = resolve_classes(opts);
  const std::size_t report_depth = resolve_depth(opts);
  const hdc::ScanMode base_mode =
      opts.exact_scan ? hdc::ScanMode::kExact : hdc::ScanMode::kDefault;

  if (!opts.multi_object) {
    FactorizedObject obj;
    obj.classes.reserve(report_classes.size());
    for (std::size_t cls : report_classes) {
      const hdc::Hypervector unbound =
          hdc::bind(target, books_->other_labels_key(cls));
      obj.classes.push_back(factorize_class_single(unbound, cls, report_depth,
                                                   base_mode,
                                                   result.similarity_ops,
                                                   result.probes));
    }
    result.objects.push_back(std::move(obj));
    return result;
  }

  // Multi-object mode factorizes all classes at full depth internally —
  // reconstruction-and-subtraction needs complete objects — and truncates
  // the report to the requested classes/depth at the end.
  const tax::Taxonomy& t = books_->taxonomy();
  const std::size_t full_depth = t.max_depth();
  const double th = effective_threshold(opts);

  // Tiered scans can only *miss* candidates, so a stalled round (no class
  // evidence, or no combination above TH) is re-run with exact scans before
  // anything is concluded: convergence is never declared on an
  // approximation artifact, and accepted objects are always verified by the
  // exact re-encode-and-compare similarity either way.
  const bool can_rescan = base_mode == hdc::ScanMode::kDefault && tiered();

  hdc::Hypervector residual = target;
  result.converged = false;
  for (std::size_t round = 0; round < opts.max_objects; ++round) {
    ++result.rounds;
    RoundTrace round_trace;
    std::vector<ClassCandidates> cands;
    double best_sim = th;  // acceptance requires similarity > TH
    std::optional<tax::Object> best_object;
    hdc::ScanMode mode = base_mode;
    while (true) {
      round_trace = RoundTrace{};
      // Per-class thresholded candidate enumeration on the current residual.
      cands.clear();
      cands.reserve(t.num_classes());
      bool feasible = true;
      for (std::size_t cls = 0; cls < t.num_classes(); ++cls) {
        const hdc::Hypervector unbound =
            hdc::bind(residual, books_->other_labels_key(cls));
        ClassCandidates cc =
            collect_candidates(unbound, cls, full_depth, th,
                               opts.max_candidates_per_class, mode,
                               result.similarity_ops, result.probes);
        if (opts.collect_trace) {
          round_trace.candidates_per_class.push_back(cc.paths.size());
          round_trace.null_candidates += cc.null_candidate ? 1 : 0;
        }
        if (cc.paths.empty() && !cc.null_candidate) {
          feasible = false;  // some class has no evidence left above TH
          break;
        }
        cands.push_back(std::move(cc));
      }

      // Combination search: odometer over per-class options (each candidate
      // path, plus NULL where it passed TH). Keep the combination whose
      // re-encoding matches the residual best.
      best_sim = th;
      best_object.reset();
      if (feasible) {
        std::vector<std::size_t> option_count(t.num_classes());
        for (std::size_t c = 0; c < t.num_classes(); ++c) {
          option_count[c] =
              cands[c].paths.size() + (cands[c].null_candidate ? 1 : 0);
        }

        std::vector<std::size_t> odo(t.num_classes(), 0);
        bool more = true;
        while (more) {
          tax::Object combo(t.num_classes());
          bool all_absent = true;
          for (std::size_t c = 0; c < t.num_classes(); ++c) {
            if (odo[c] < cands[c].paths.size()) {
              combo.set_path(c, cands[c].paths[odo[c]].path);
              all_absent = false;
            }
            // else: NULL option — class left absent.
          }
          if (!all_absent) {
            const hdc::Hypervector combo_hv = encoder_->encode_object(combo);
            const double s = hdc::similarity(residual, combo_hv);
            ++result.combinations_checked;
            if (opts.collect_trace) {
              ++round_trace.combinations;
              round_trace.best_similarity =
                  std::max(round_trace.best_similarity, s);
            }
            if (s > best_sim) {
              best_sim = s;
              best_object = combo;
            }
          }
          // Advance the odometer.
          more = false;
          for (std::size_t c = 0; c < t.num_classes(); ++c) {
            if (++odo[c] < option_count[c]) {
              more = true;
              break;
            }
            odo[c] = 0;
          }
        }
      }

      if (best_object || mode == hdc::ScanMode::kExact || !can_rescan) break;
      // Stalled under approximate scans: retry this round exactly.
      mode = hdc::ScanMode::kExact;
      ++result.exact_rescans;
    }

    if (!best_object) {
      if (opts.collect_trace) result.trace.push_back(std::move(round_trace));
      result.converged = true;  // nothing above TH: the residual is exhausted
      break;
    }
    if (opts.collect_trace) {
      round_trace.accepted = true;
      result.trace.push_back(std::move(round_trace));
    }

    // Record the accepted object, attaching the per-level similarities from
    // the candidate enumeration.
    FactorizedObject found;
    found.match_similarity = best_sim;
    for (std::size_t cls = 0; cls < t.num_classes(); ++cls) {
      ClassFactorization cf;
      cf.cls = cls;
      cf.null_similarity = cands[cls].null_similarity;
      if (best_object->has_class(cls)) {
        cf.present = true;
        cf.path = best_object->path(cls);
        for (const CandidatePath& cp : cands[cls].paths) {
          if (cp.path == cf.path) {
            cf.level_similarities = cp.level_similarities;
            break;
          }
        }
      }
      found.classes.push_back(std::move(cf));
    }

    // Exclude the reconstructed object and continue on the new residual.
    hdc::subtract(residual, encoder_->encode_object(*best_object));
    result.objects.push_back(std::move(found));
  }

  // Truncate the report to the requested classes and depth.
  if (!opts.selected_classes.empty() || report_depth < full_depth) {
    for (FactorizedObject& obj : result.objects) {
      std::vector<ClassFactorization> kept;
      for (ClassFactorization& cf : obj.classes) {
        if (std::find(report_classes.begin(), report_classes.end(), cf.cls) ==
            report_classes.end()) {
          continue;
        }
        if (cf.path.size() > report_depth) {
          cf.path.resize(report_depth);
          cf.level_similarities.resize(report_depth);
        }
        kept.push_back(std::move(cf));
      }
      obj.classes = std::move(kept);
    }
  }
  return result;
}

FactorizedObject Factorizer::factorize_single(
    const hdc::Hypervector& target) const {
  FactorizeResult r = factorize(target, FactorizeOptions{});
  return std::move(r.objects.at(0));
}

}  // namespace factorhd::core
