#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <span>
#include <thread>

#include "hdc/kernels/packed_item_memory.hpp"

namespace factorhd::core {

std::size_t BatchFactorizer::effective_threads(std::size_t batch) const {
  std::size_t n = opts_.num_threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min(n, std::max<std::size_t>(1, batch));
}

std::vector<FactorizeResult> BatchFactorizer::factorize_all(
    const std::vector<hdc::Hypervector>& targets,
    const FactorizeOptions& opts) const {
  std::vector<FactorizeResult> results(targets.size());
  if (targets.empty()) return results;

  const std::size_t workers = effective_threads(targets.size());

  if (!opts.multi_object) {
    // Single-object batches route through Factorizer::factorize_block so
    // each worker's slice shares one codebook stream per class (the blocked
    // QueryBlockKernels scan). Slices are fixed contiguous ranges writing
    // disjoint result slots, and factorize_block is bit-identical per
    // target to factorize, so the determinism contract holds unchanged for
    // every worker count.
    const std::span<const hdc::Hypervector> all(targets);
    if (workers == 1) {
      return factorizer_->factorize_block(all, opts);
    }
    std::atomic<bool> slice_failed{false};
    std::exception_ptr slice_error;
    auto slice_work = [&](std::size_t begin, std::size_t end) {
      const hdc::kernels::ScanNestingGuard nesting_guard;
      try {
        std::vector<FactorizeResult> part =
            factorizer_->factorize_block(all.subspan(begin, end - begin), opts);
        std::move(part.begin(), part.end(),
                  results.begin() + static_cast<std::ptrdiff_t>(begin));
      } catch (...) {
        if (!slice_failed.exchange(true)) {
          slice_error = std::current_exception();
        }
      }
    };
    const std::size_t base = targets.size() / workers;
    const std::size_t extra = targets.size() % workers;
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    std::size_t begin = 0;
    for (std::size_t w = 0; w + 1 < workers; ++w) {
      const std::size_t end = begin + base + (w < extra ? 1 : 0);
      pool.emplace_back(slice_work, begin, end);
      begin = end;
    }
    slice_work(begin, targets.size());
    for (auto& t : pool) t.join();
    if (slice_error) std::rethrow_exception(slice_error);
    return results;
  }

  if (workers == 1) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      results[i] = factorizer_->factorize(targets[i], opts);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  auto work = [&]() {
    // Batch workers are the parallel layer; mark the thread so the packed
    // scans underneath stay sequential instead of nesting a second pool
    // (batch threads x scan threads) per call.
    const hdc::kernels::ScanNestingGuard nesting_guard;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= targets.size() || failed.load(std::memory_order_relaxed)) {
        return;
      }
      try {
        results[i] = factorizer_->factorize(targets[i], opts);
      } catch (...) {
        // Keep only the first failure; stop handing out new work.
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace factorhd::core
