// RAVEN-like scene generator (Table I substitution, DESIGN.md §4).
//
// The RAVEN dataset (Zhang et al., CVPR 2019) contains panels of 1-9 objects
// drawn in seven constellations, each object carrying position, color, size
// and type attributes. Following the paper's encoding, a scene maps onto a
// FactorHD taxonomy of three classes per object:
//
//   class 0: position   (codebook size = slots in the constellation)
//   class 1: color      (10 values)
//   class 2: size-type  (5 sizes × 6 types = 30 combinations, modelled as a
//                        two-level hierarchy: size at level 1, type below it)
//
// Objects in a panel occupy distinct positions; the `perception_error`
// option independently corrupts each observed attribute, standing in for an
// imperfect neural front end.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "taxonomy/object.hpp"
#include "taxonomy/taxonomy.hpp"
#include "util/rng.hpp"

namespace factorhd::data {

enum class Constellation {
  kCenter,          // single centered object
  kTwoByTwoGrid,    // up to 4 objects
  kThreeByThreeGrid,  // up to 9 objects
  kLeftRight,       // 2 components
  kUpDown,          // 2 components
  kOutInCenter,     // outer + inner object
  kOutInGrid,       // outer object + 2x2 inner grid
};

[[nodiscard]] const char* constellation_name(Constellation c);
[[nodiscard]] std::size_t position_slots(Constellation c);
/// All seven RAVEN constellations, in the order the paper's Table I lists.
[[nodiscard]] const std::vector<Constellation>& all_constellations();

struct RavenSpec {
  Constellation constellation = Constellation::kThreeByThreeGrid;
  std::size_t num_colors = 10;
  std::size_t num_sizes = 5;
  std::size_t num_types = 6;
  /// Probability that each non-mandatory slot is occupied (panels always
  /// contain at least one object).
  double occupancy = 0.5;
  /// Per-attribute observation error of the simulated neural front end.
  double perception_error = 0.0;
};

struct RavenObject {
  std::size_t position = 0;
  std::size_t color = 0;
  std::size_t size = 0;
  std::size_t type = 0;

  bool operator==(const RavenObject&) const = default;
};

struct RavenPanel {
  std::vector<RavenObject> objects;  // distinct positions, ascending
};

/// FactorHD taxonomy for a spec: {slots}, {colors}, {sizes, types}.
[[nodiscard]] tax::Taxonomy raven_taxonomy(const RavenSpec& spec);

/// Ground-truth random panel.
[[nodiscard]] RavenPanel random_panel(const RavenSpec& spec,
                                      util::Xoshiro256& rng);

/// The panel as seen through the simulated perception front end: each
/// attribute of each object is replaced by a uniform random value with
/// probability `spec.perception_error`.
[[nodiscard]] RavenPanel perceive(const RavenPanel& truth,
                                  const RavenSpec& spec,
                                  util::Xoshiro256& rng);

/// Converts one object to its tax::Object form under raven_taxonomy(spec).
[[nodiscard]] tax::Object to_tax_object(const RavenObject& obj,
                                        const RavenSpec& spec);

/// Converts a whole panel to a tax::Scene.
[[nodiscard]] tax::Scene to_tax_scene(const RavenPanel& panel,
                                      const RavenSpec& spec);

/// Inverse of to_tax_object; throws std::invalid_argument on objects that do
/// not carry all three classes at full depth.
[[nodiscard]] RavenObject from_tax_object(const tax::Object& obj,
                                          const RavenSpec& spec);

}  // namespace factorhd::data
