// Synthetic class-conditional Gaussian feature datasets.
//
// Substitution for image datasets (DESIGN.md §4): we cannot ship CIFAR/RAVEN
// pixels, so the "image" presented to the neural substrate is a feature
// vector drawn from a class-conditional Gaussian around a random class
// prototype. The `noise` parameter controls Bayes separability, and is
// calibrated in the benches so the trained extractor's top-1 accuracy matches
// the published ResNet-18 accuracy on the corresponding real dataset.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace factorhd::data {

struct ClusterSpec {
  std::size_t num_classes = 10;
  std::size_t feature_dim = 64;
  std::size_t samples_per_class = 100;
  /// Per-component Gaussian noise stddev around the class prototype.
  /// Prototypes are unit-normalized, so larger noise = harder problem.
  double noise = 0.35;
};

/// Random unit-norm class prototypes (one row per class).
[[nodiscard]] nn::Matrix make_prototypes(std::size_t num_classes,
                                         std::size_t feature_dim,
                                         util::Xoshiro256& rng);

/// Samples a dataset around the given prototypes. Labels are class indices
/// in [0, prototypes.rows()).
[[nodiscard]] nn::Dataset sample_clusters(const nn::Matrix& prototypes,
                                          std::size_t samples_per_class,
                                          double noise, util::Xoshiro256& rng);

/// Convenience: prototypes + one train and one test split with independent
/// noise draws.
struct TrainTestSplit {
  nn::Matrix prototypes;
  nn::Dataset train;
  nn::Dataset test;
};
[[nodiscard]] TrainTestSplit make_cluster_split(const ClusterSpec& spec,
                                                util::Xoshiro256& rng);

}  // namespace factorhd::data
