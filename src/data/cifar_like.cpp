#include "data/cifar_like.hpp"

#include <cmath>
#include <stdexcept>

namespace factorhd::data {

namespace {

nn::Dataset sample_hierarchical(const nn::Matrix& fine_protos,
                                std::size_t per_class, double noise,
                                util::Xoshiro256& rng) {
  return sample_clusters(fine_protos, per_class, noise, rng);
}

}  // namespace

CifarLike make_cifar_like(const CifarLikeSpec& spec, util::Xoshiro256& rng) {
  if (spec.num_coarse == 0 || spec.fine_per_coarse == 0) {
    throw std::invalid_argument("make_cifar_like: zero-sized spec");
  }
  // Coarse prototypes on the unit sphere; fine prototypes perturb them by a
  // scaled unit offset and renormalize.
  nn::Matrix coarse = make_prototypes(spec.num_coarse, spec.feature_dim, rng);
  nn::Matrix offsets = make_prototypes(spec.num_coarse * spec.fine_per_coarse,
                                       spec.feature_dim, rng);
  nn::Matrix fine(spec.num_coarse * spec.fine_per_coarse, spec.feature_dim);
  for (std::size_t f = 0; f < fine.rows(); ++f) {
    const std::size_t c = f / spec.fine_per_coarse;
    double norm_sq = 0.0;
    for (std::size_t d = 0; d < spec.feature_dim; ++d) {
      const double v = coarse.at(c, d) +
                       spec.fine_offset_scale * offsets.at(f, d);
      fine.at(f, d) = static_cast<float>(v);
      norm_sq += v * v;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (std::size_t d = 0; d < spec.feature_dim; ++d) fine.at(f, d) *= inv;
  }

  CifarLike out;
  out.spec = spec;
  out.train =
      sample_hierarchical(fine, spec.train_per_class, spec.noise, rng);
  out.test = sample_hierarchical(fine, spec.test_per_class, spec.noise, rng);
  return out;
}

tax::Taxonomy label_taxonomy(const CifarLikeSpec& spec) {
  std::vector<std::size_t> label_chain;
  if (spec.fine_per_coarse > 1) {
    label_chain = {spec.num_coarse, spec.fine_per_coarse};
  } else {
    label_chain = {spec.num_coarse};
  }
  return tax::Taxonomy(
      std::vector<std::vector<std::size_t>>{label_chain, {1}});
}

tax::Object label_object(const CifarLikeSpec& spec, int fine) {
  if (fine < 0 ||
      static_cast<std::size_t>(fine) >= spec.num_coarse * spec.fine_per_coarse) {
    throw std::invalid_argument("label_object: fine label out of range");
  }
  tax::Object obj(2);
  if (spec.fine_per_coarse > 1) {
    const std::size_t coarse =
        static_cast<std::size_t>(fine) / spec.fine_per_coarse;
    obj.set_path(0, {coarse, static_cast<std::size_t>(fine)});
  } else {
    obj.set_path(0, {static_cast<std::size_t>(fine)});
  }
  obj.set_path(1, {0});  // the dummy label
  return obj;
}

}  // namespace factorhd::data
