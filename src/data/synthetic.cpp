#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace factorhd::data {

nn::Matrix make_prototypes(std::size_t num_classes, std::size_t feature_dim,
                           util::Xoshiro256& rng) {
  if (num_classes == 0 || feature_dim == 0) {
    throw std::invalid_argument("make_prototypes: zero-sized spec");
  }
  nn::Matrix protos(num_classes, feature_dim);
  for (std::size_t c = 0; c < num_classes; ++c) {
    double norm_sq = 0.0;
    for (std::size_t d = 0; d < feature_dim; ++d) {
      const double v = rng.normal();
      protos.at(c, d) = static_cast<float>(v);
      norm_sq += v * v;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (std::size_t d = 0; d < feature_dim; ++d) protos.at(c, d) *= inv;
  }
  return protos;
}

nn::Dataset sample_clusters(const nn::Matrix& prototypes,
                            std::size_t samples_per_class, double noise,
                            util::Xoshiro256& rng) {
  const std::size_t num_classes = prototypes.rows();
  const std::size_t feature_dim = prototypes.cols();
  nn::Dataset ds;
  ds.features = nn::Matrix(num_classes * samples_per_class, feature_dim);
  ds.labels.resize(num_classes * samples_per_class);
  std::size_t row = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s, ++row) {
      for (std::size_t d = 0; d < feature_dim; ++d) {
        ds.features.at(row, d) =
            prototypes.at(c, d) + static_cast<float>(noise * rng.normal());
      }
      ds.labels[row] = static_cast<int>(c);
    }
  }
  return ds;
}

TrainTestSplit make_cluster_split(const ClusterSpec& spec,
                                  util::Xoshiro256& rng) {
  TrainTestSplit split;
  split.prototypes = make_prototypes(spec.num_classes, spec.feature_dim, rng);
  split.train = sample_clusters(split.prototypes, spec.samples_per_class,
                                spec.noise, rng);
  split.test = sample_clusters(split.prototypes, spec.samples_per_class,
                               spec.noise, rng);
  return split;
}

}  // namespace factorhd::data
