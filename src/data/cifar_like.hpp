// CIFAR-10-like and CIFAR-100-like synthetic datasets (Table II substitution,
// DESIGN.md §4).
//
// CIFAR-10-like: 10 flat classes. CIFAR-100-like: 20 coarse classes × 5 fine
// classes each (the real CIFAR-100 coarse/fine structure). Feature vectors
// are class-conditional Gaussians; for CIFAR-100 the fine prototype is the
// coarse prototype plus a smaller fine offset, so coarse structure is easier
// to learn than fine structure — mirroring real coarse/fine accuracy gaps.
//
// The matching FactorHD taxonomies are provided so that the neuro-symbolic
// pipeline encodes labels exactly as the paper describes: CIFAR-10 binds the
// image label with a dummy label; CIFAR-100 encodes the coarse and fine
// labels as two levels of one class, bound with a dummy label.
#pragma once

#include <cstddef>

#include "data/synthetic.hpp"
#include "nn/trainer.hpp"
#include "taxonomy/object.hpp"
#include "taxonomy/taxonomy.hpp"
#include "util/rng.hpp"

namespace factorhd::data {

struct CifarLikeSpec {
  std::size_t num_coarse = 20;   ///< 10 for CIFAR-10-like (flat), 20 for -100
  std::size_t fine_per_coarse = 5;  ///< 1 for CIFAR-10-like (flat)
  std::size_t feature_dim = 64;
  std::size_t train_per_class = 64;
  std::size_t test_per_class = 32;
  /// Noise around the fine prototype; tunes achievable accuracy. Calibrated
  /// so a trained MLP lands near published ResNet-18 territory: ~95% top-1
  /// on the CIFAR-10-like spec, ~75% fine top-1 on the CIFAR-100-like spec.
  double noise = 0.20;
  /// Scale of the fine offset relative to the coarse prototype (smaller =
  /// fine classes harder to separate than coarse ones).
  double fine_offset_scale = 0.55;
};

[[nodiscard]] inline CifarLikeSpec cifar10_like_spec() {
  CifarLikeSpec s;
  s.num_coarse = 10;
  s.fine_per_coarse = 1;
  s.noise = 0.26;
  return s;
}

[[nodiscard]] inline CifarLikeSpec cifar100_like_spec() {
  return CifarLikeSpec{};
}

struct CifarLike {
  CifarLikeSpec spec;
  /// Fine-label datasets (labels in [0, num_coarse * fine_per_coarse)).
  nn::Dataset train;
  nn::Dataset test;

  [[nodiscard]] std::size_t num_fine() const noexcept {
    return spec.num_coarse * spec.fine_per_coarse;
  }
  [[nodiscard]] int coarse_of(int fine) const noexcept {
    return fine / static_cast<int>(spec.fine_per_coarse);
  }
};

/// Samples a hierarchical dataset per the spec.
[[nodiscard]] CifarLike make_cifar_like(const CifarLikeSpec& spec,
                                        util::Xoshiro256& rng);

/// FactorHD taxonomy for the label structure: class 0 is the label hierarchy
/// ({num_coarse, fine_per_coarse} for CIFAR-100-like, {num_coarse} when
/// fine_per_coarse == 1), class 1 is the single-item dummy label the paper
/// binds against.
[[nodiscard]] tax::Taxonomy label_taxonomy(const CifarLikeSpec& spec);

/// The tax::Object representing one image's label under `label_taxonomy`.
[[nodiscard]] tax::Object label_object(const CifarLikeSpec& spec, int fine);

}  // namespace factorhd::data
