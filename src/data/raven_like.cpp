#include "data/raven_like.hpp"

#include <algorithm>
#include <stdexcept>

namespace factorhd::data {

const char* constellation_name(Constellation c) {
  switch (c) {
    case Constellation::kCenter: return "Center";
    case Constellation::kTwoByTwoGrid: return "2x2Grid";
    case Constellation::kThreeByThreeGrid: return "3x3Grid";
    case Constellation::kLeftRight: return "L-R";
    case Constellation::kUpDown: return "U-D";
    case Constellation::kOutInCenter: return "O-IC";
    case Constellation::kOutInGrid: return "O-IG";
  }
  return "unknown";
}

std::size_t position_slots(Constellation c) {
  switch (c) {
    case Constellation::kCenter: return 1;
    case Constellation::kTwoByTwoGrid: return 4;
    case Constellation::kThreeByThreeGrid: return 9;
    case Constellation::kLeftRight: return 2;
    case Constellation::kUpDown: return 2;
    case Constellation::kOutInCenter: return 2;
    case Constellation::kOutInGrid: return 5;  // outer + 2x2 inner grid
  }
  return 0;
}

const std::vector<Constellation>& all_constellations() {
  static const std::vector<Constellation> kAll = {
      Constellation::kCenter,        Constellation::kTwoByTwoGrid,
      Constellation::kThreeByThreeGrid, Constellation::kLeftRight,
      Constellation::kUpDown,        Constellation::kOutInCenter,
      Constellation::kOutInGrid,
  };
  return kAll;
}

tax::Taxonomy raven_taxonomy(const RavenSpec& spec) {
  return tax::Taxonomy(std::vector<std::vector<std::size_t>>{
      {position_slots(spec.constellation)},
      {spec.num_colors},
      {spec.num_sizes, spec.num_types}});
}

RavenPanel random_panel(const RavenSpec& spec, util::Xoshiro256& rng) {
  const std::size_t slots = position_slots(spec.constellation);
  RavenPanel panel;
  // One mandatory slot keeps panels non-empty (RAVEN panels always contain
  // at least one object).
  const std::size_t mandatory = rng.uniform(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    if (s != mandatory && !rng.bernoulli(spec.occupancy)) continue;
    RavenObject obj;
    obj.position = s;
    obj.color = rng.uniform(spec.num_colors);
    obj.size = rng.uniform(spec.num_sizes);
    obj.type = rng.uniform(spec.num_types);
    panel.objects.push_back(obj);
  }
  return panel;
}

RavenPanel perceive(const RavenPanel& truth, const RavenSpec& spec,
                    util::Xoshiro256& rng) {
  RavenPanel seen = truth;
  if (spec.perception_error <= 0.0) return seen;
  for (RavenObject& obj : seen.objects) {
    if (rng.bernoulli(spec.perception_error)) {
      obj.color = rng.uniform(spec.num_colors);
    }
    if (rng.bernoulli(spec.perception_error)) {
      obj.size = rng.uniform(spec.num_sizes);
    }
    if (rng.bernoulli(spec.perception_error)) {
      obj.type = rng.uniform(spec.num_types);
    }
  }
  return seen;
}

tax::Object to_tax_object(const RavenObject& obj, const RavenSpec& spec) {
  if (obj.position >= position_slots(spec.constellation) ||
      obj.color >= spec.num_colors || obj.size >= spec.num_sizes ||
      obj.type >= spec.num_types) {
    throw std::invalid_argument("to_tax_object: attribute out of range");
  }
  tax::Object out(3);
  out.set_path(0, {obj.position});
  out.set_path(1, {obj.color});
  // size-type as a two-level path: size at level 1, the (size, type)
  // combination at level 2 under global child indexing.
  out.set_path(2, {obj.size, obj.size * spec.num_types + obj.type});
  return out;
}

tax::Scene to_tax_scene(const RavenPanel& panel, const RavenSpec& spec) {
  tax::Scene scene;
  scene.reserve(panel.objects.size());
  for (const RavenObject& obj : panel.objects) {
    scene.push_back(to_tax_object(obj, spec));
  }
  return scene;
}

RavenObject from_tax_object(const tax::Object& obj, const RavenSpec& spec) {
  if (obj.num_classes() != 3 || !obj.has_class(0) || !obj.has_class(1) ||
      !obj.has_class(2) || obj.path(2).size() != 2) {
    throw std::invalid_argument("from_tax_object: malformed RAVEN object");
  }
  RavenObject out;
  out.position = obj.path(0).at(0);
  out.color = obj.path(1).at(0);
  out.size = obj.path(2).at(0);
  out.type = obj.path(2).at(1) % spec.num_types;
  return out;
}

}  // namespace factorhd::data
