#include "util/rng.hpp"

#include <cmath>

namespace factorhd::util {

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's method: multiply a 64-bit draw by bound and keep the high word;
  // reject the small biased region at the bottom of each residue class.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  // Marsaglia polar method; no cached second value so consumption of the
  // underlying stream is data-dependent but fully deterministic.
  for (;;) {
    const double u = 2.0 * uniform_double() - 1.0;
    const double v = 2.0 * uniform_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace factorhd::util
