// Wall-clock stopwatch for factorization-time measurements.
#pragma once

#include <chrono>

namespace factorhd::util {

/// Monotonic stopwatch. Started on construction; `elapsed_*` reads do not
/// stop it, `restart` resets the origin.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }
  [[nodiscard]] double elapsed_us() const noexcept {
    return elapsed_seconds() * 1e6;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace factorhd::util
