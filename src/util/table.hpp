// Plain-text table printer used by the benchmark harness to emit
// paper-style result rows (Fig./Table reproductions) to stdout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace factorhd::util {

/// Accumulates rows of strings and prints them with aligned columns.
/// Intentionally minimal: benches build rows with format helpers below.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; short rows are padded with empty cells, long rows
  /// extend the column count.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header separator and two-space column gaps.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("0.9971" style used in tables).
std::string fmt_double(double v, int precision = 4);
/// Percentage with % suffix, e.g. 99.71%.
std::string fmt_percent(double fraction, int precision = 2);
/// Scientific-style problem-size formatting, e.g. "1.7e+07".
std::string fmt_sci(double v, int precision = 1);
/// Human time: picks ns/us/ms/s based on magnitude.
std::string fmt_time_us(double microseconds);

}  // namespace factorhd::util
