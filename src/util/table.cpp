#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace factorhd::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      if (c + 1 < cols) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_time_us(double microseconds) {
  std::ostringstream os;
  os << std::fixed;
  if (microseconds < 1.0) {
    os << std::setprecision(1) << microseconds * 1e3 << " ns";
  } else if (microseconds < 1e3) {
    os << std::setprecision(2) << microseconds << " us";
  } else if (microseconds < 1e6) {
    os << std::setprecision(2) << microseconds / 1e3 << " ms";
  } else {
    os << std::setprecision(3) << microseconds / 1e6 << " s";
  }
  return os.str();
}

}  // namespace factorhd::util
