// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library draws from a Xoshiro256++ stream
// seeded through SplitMix64, so a single experiment seed reproduces a table
// bit-for-bit across runs and platforms (no reliance on std::mt19937 state
// layout or libstdc++ distribution implementations).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace factorhd::util {

/// SplitMix64: used to expand a single 64-bit seed into the 256-bit Xoshiro
/// state. Passes BigCrush; recommended seeding procedure by the Xoshiro
/// authors (Blackman & Vigna).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ PRNG. Satisfies std::uniform_random_bit_generator so it can
/// drive <random> distributions, but the helpers below avoid <random>
/// distributions entirely for cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9d1ad4e3c0a5f217ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// true with probability p.
  bool bernoulli(double p) noexcept { return uniform_double() < p; }

  /// +1 or -1 with equal probability (one bit per call of the generator is
  /// wasteful; bulk bipolar generation lives in hdc::Codebook).
  int bipolar() noexcept { return ((*this)() >> 63) ? 1 : -1; }

  /// Standard normal via Marsaglia polar method (deterministic given stream).
  double normal() noexcept;

  /// Derive an independent child stream. Children of distinct indices are
  /// statistically independent of each other and of the parent continuation.
  Xoshiro256 fork(std::uint64_t stream_index) noexcept {
    SplitMix64 sm((*this)() ^ (0xd6e8feb86659fd93ULL * (stream_index + 1)));
    Xoshiro256 child(sm.next());
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace factorhd::util
