// Minimal CSV writer; benches optionally dump raw sweep data next to the
// human-readable tables so figures can be re-plotted offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace factorhd::util {

/// Streaming CSV writer with RFC-4180-style quoting of cells containing
/// commas, quotes, or newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). `ok()` reports failure instead of
  /// throwing so benches can degrade to stdout-only.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace factorhd::util
