#include "util/csv.hpp"

namespace factorhd::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace factorhd::util
