// Environment-variable helpers and the registry of FACTORHD_* runtime knobs.
//
// Every tunable the library or a tool reads from the environment is declared
// in env_knobs() with its accepted values, default, and effect, so the
// `factorhd info` subcommand (and the docs) can enumerate them from one
// place instead of each call site growing its own ad-hoc parsing. Numeric
// knobs go through env_size_t, which range-clamps instead of trusting
// arbitrary user input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace factorhd::util {

/// Value of environment variable `name`, or `fallback` if unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Integer environment variable; returns `fallback` when unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Unsigned size knob with range clamping — the standard accessor for
/// numeric FACTORHD_* knobs. Unset, empty, unparsable, or negative values
/// yield `fallback` (returned verbatim: a caller's fallback may carry a
/// sentinel meaning such as 0 = "auto"); parsed values are clamped into
/// [min_value, max_value].
/// \param name Environment variable name.
/// \param fallback Returned when the variable is unset/empty/invalid.
/// \param min_value,max_value Inclusive clamp range for parsed values.
std::size_t env_size_t(const char* name, std::size_t fallback,
                       std::size_t min_value, std::size_t max_value);

/// One documented FACTORHD_* environment knob.
struct EnvKnob {
  const char* name;         ///< variable name, e.g. "FACTORHD_SIMD"
  const char* values;       ///< accepted values, human-readable
  const char* default_str;  ///< effective default, human-readable
  const char* description;  ///< one-line effect
};

/// Registry of every FACTORHD_* environment knob the library, benches, and
/// tools honor. Call sites that parse a knob keep a matching entry here so
/// `factorhd info` stays complete.
std::span<const EnvKnob> env_knobs();

/// True when FACTORHD_BENCH_SCALE is "full" (paper-scale sweeps); default is
/// the reduced laptop-scale configuration.
bool bench_full_scale();

/// Global experiment seed: FACTORHD_SEED, default 42.
std::uint64_t experiment_seed();

}  // namespace factorhd::util
