// Environment-variable helpers used by the bench harness for scale control
// (FACTORHD_BENCH_SCALE, FACTORHD_TRIALS, FACTORHD_SEED).
#pragma once

#include <cstdint>
#include <string>

namespace factorhd::util {

/// Value of environment variable `name`, or `fallback` if unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Integer environment variable; returns `fallback` when unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// True when FACTORHD_BENCH_SCALE is "full" (paper-scale sweeps); default is
/// the reduced laptop-scale configuration.
bool bench_full_scale();

/// Global experiment seed: FACTORHD_SEED, default 42.
std::uint64_t experiment_seed();

}  // namespace factorhd::util
