#include "util/env.hpp"

#include <cstdlib>

namespace factorhd::util {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

bool bench_full_scale() {
  return env_string("FACTORHD_BENCH_SCALE", "") == "full";
}

std::uint64_t experiment_seed() {
  return static_cast<std::uint64_t>(env_int("FACTORHD_SEED", 42));
}

}  // namespace factorhd::util
