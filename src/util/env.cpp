#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace factorhd::util {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

std::size_t env_size_t(const char* name, std::size_t fallback,
                       std::size_t min_value, std::size_t max_value) {
  const std::int64_t parsed = env_int(name, -1);
  if (parsed < 0) return fallback;
  return std::clamp(static_cast<std::size_t>(parsed), min_value, max_value);
}

std::span<const EnvKnob> env_knobs() {
  // One row per knob, alphabetical. Keep in sync with the call sites (the
  // parsers cite this registry) and the table in docs/ARCHITECTURE.md.
  static const EnvKnob kKnobs[] = {
      {"FACTORHD_BENCH_SCALE", "quick | full", "quick",
       "bench sweep sizes: reduced laptop-scale vs paper-scale"},
      {"FACTORHD_CSV_DIR", "directory path", "unset = no CSV",
       "bench harness: also write per-bench CSVs here"},
      {"FACTORHD_NET_ADMISSION_DEPTH", "1 .. 2^20", "256",
       "net server: bounded admission-queue depth; a full queue answers "
       "overload (queue-full) frames instead of queueing unboundedly"},
      {"FACTORHD_NET_CLIENT_QUOTA", "1 .. 2^20", "32",
       "net server: per-client in-flight request quota; exceeding it "
       "answers overload (quota) frames"},
      {"FACTORHD_NET_IDLE_TIMEOUT_MS", "10 .. 86400000", "30000",
       "net server: disconnect connections making no protocol progress "
       "(no complete frame parsed, no response bytes flushed) for this long"},
      {"FACTORHD_NET_MAX_FRAME", "1024 .. 2^30", "1048576",
       "net server: per-frame payload byte bound (mirrors the io.cpp "
       "pre-allocation guard); oversized length prefixes disconnect"},
      {"FACTORHD_NET_POLLER", "epoll | poll", "epoll",
       "net server: readiness backend; poll forces the portable poll(2) "
       "fallback even where epoll is available"},
      {"FACTORHD_NET_PORT", "0 (ephemeral) .. 65535", "0",
       "net server: TCP port bound on 127.0.0.1 by `listen`; 0 asks the "
       "kernel for an ephemeral port (printed on start)"},
      {"FACTORHD_NET_WRITE_BUF", "4096 .. 2^30", "8388608",
       "net server: per-connection write-buffer byte bound; clients not "
       "draining responses are disconnected at the limit"},
      {"FACTORHD_SCAN_THREADS", "0 (auto) .. 256", "0 = min(hardware, 8)",
       "plane-scan worker-pool width; 1 disables scan threading"},
      {"FACTORHD_SEED", "any u64", "42", "global experiment seed"},
      {"FACTORHD_SERVE_CACHE_CAP", "0 (off) .. 2^24", "4096",
       "factorhd_serve: ResultCache entries"},
      {"FACTORHD_SERVE_MAX_BATCH", "1 .. 4096", "64",
       "factorhd_serve: micro-batch flush size"},
      {"FACTORHD_SERVE_MAX_DELAY_US", "0 .. 10^6", "200",
       "factorhd_serve: micro-batch flush deadline (us)"},
      {"FACTORHD_SERVE_QUEUE_CAP", "1 .. 2^20", "1024",
       "factorhd_serve: bounded request-queue capacity"},
      {"FACTORHD_SHARDS", "1 .. 1024", "1 = unsharded",
       "codebook shard count of the scatter-gather scan partition "
       "(bit-identical results at any count)"},
      {"FACTORHD_SHARD_MIN_ROWS", "0 (never) .. 2^30", "65536",
       "codebook row count at which kAuto memories honour the env-requested "
       "shard count"},
      {"FACTORHD_SIMD", "auto | scalar | words | avx2 | avx512 | neon", "auto",
       "clamps the dispatched SIMD tier of packed codebook scans"},
      {"FACTORHD_SLOW_QUERY_US", "0 (off) .. 2^40", "0",
       "serve-side slow-query log: requests whose end-to-end latency exceeds "
       "this many microseconds emit a rate-limited JSONL stage breakdown"},
      {"FACTORHD_SNAPSHOT_MMAP", "0 (stream) | 1 (mmap)", "1",
       "load FTS1/FTX1 snapshots via a shared read-only mmap where available"},
      {"FACTORHD_TIERED_BUILD_THREADS", "0 (auto) .. 256", "0 = scan pool",
       "worker threads of the tiered-index clustering build (bit-identical "
       "results at any width)"},
      {"FACTORHD_TIERED_CLUSTERS", "0 (auto) .. 2^24", "0 = 4*ceil(sqrt(M))",
       "coarse bucket count K of the tiered (two-stage) scan index"},
      {"FACTORHD_TIERED_MIN_ROWS", "0 (never) .. 2^30", "65536",
       "codebook row count at which kAuto memories build the tiered index"},
      {"FACTORHD_TIERED_NPROBE", "0 (auto) .. 2^24", "0 = max(1, K/16)",
       "buckets probed per tiered scan; >= K makes every scan exact"},
      {"FACTORHD_TIERED_NPROBE_MAX", "0 (off) .. 2^24", "0 = fixed nprobe",
       "adaptive probing ceiling: derive per-query probe counts from the "
       "centroid-score margin, up to this many buckets"},
      {"FACTORHD_TIERED_NPROBE_MIN", "0 (auto) .. 2^24", "0 = max(1, nprobe/8)",
       "adaptive probing floor: buckets always probed before the margin rule "
       "may stop; >= K keeps every scan exact"},
      {"FACTORHD_TRACE_RING", "1 .. 2^24", "4096",
       "serve-side trace-ring capacity: sampled request traces retained for "
       "`trace dump` (Chrome trace-event JSON)"},
      {"FACTORHD_TRACE_SAMPLE", "0 (off) .. 2^30", "0",
       "deterministic 1-in-N request tracing; the sampled id set depends "
       "only on the request count, not on dispatcher/thread counts"},
      {"FACTORHD_TRIALS", "0 (auto) .. any", "per-bench",
       "overrides per-point trial counts in the bench harness"},
  };
  return kKnobs;
}

bool bench_full_scale() {
  return env_string("FACTORHD_BENCH_SCALE", "") == "full";
}

std::uint64_t experiment_seed() {
  // Parsed unsigned so the full u64 range the registry documents is
  // honored (env_int's strtoll would saturate seeds above 2^63-1).
  const std::string v = env_string("FACTORHD_SEED", "");
  if (v.empty()) return 42;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str()) return 42;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace factorhd::util
