// Small statistics helpers used by the benchmark harness and tests:
// summary statistics, binomial confidence intervals for accuracy estimates,
// and least-squares fits used to extract complexity exponents from timing
// sweeps (the paper's O(N_M) vs O(N_M^2) claim).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace factorhd::util {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Summary statistics of a sample. Empty input yields an all-zero summary.
Summary summarize(std::span<const double> xs);

/// Wilson score interval for a binomial proportion, suitable for accuracy
/// estimates near 0 or 1 where the normal approximation breaks down.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.96);

/// Ordinary least squares y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Power-law fit y = c * x^p via log-log least squares. Requires positive
/// inputs; non-positive pairs are skipped. Returns {log(c) as intercept,
/// p as slope, r2 of the log-log fit}.
LinearFit fit_power_law(std::span<const double> x, std::span<const double> y);

/// Median (copies input). Empty input returns 0.
double median(std::vector<double> xs);

}  // namespace factorhd::util
