#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace factorhd::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double vx = sxx - sx * sx / dn;
  const double vy = syy - sy * sy / dn;
  const double cxy = sxy - sx * sy / dn;
  if (vx <= 0.0) return f;
  f.slope = cxy / vx;
  f.intercept = (sy - f.slope * sx) / dn;
  f.r2 = (vy > 0.0) ? (cxy * cxy) / (vx * vy) : 1.0;
  return f;
}

LinearFit fit_power_law(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  return fit_linear(lx, ly);
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

}  // namespace factorhd::util
