#include "service/metrics.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace factorhd::service {

namespace {

/// Quantile from the power-of-two histogram: the geometric midpoint (in us)
/// of the bucket containing the q-th latency. 0 when the histogram is empty.
double histogram_quantile(const std::array<std::atomic<std::uint64_t>, 64>& h,
                          double q) {
  std::uint64_t total = 0;
  for (const auto& b : h) total += b.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    seen += h[i].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      // Bucket i covers [2^i, 2^(i+1)) ns; report the geometric midpoint
      // 2^(i+0.5) in us — within sqrt(2) of the true bucketed quantile in
      // either direction. (The upper bound 2^(i+1) would overstate a
      // single-latency stream by up to 2x.)
      return std::ldexp(std::sqrt(2.0), static_cast<int>(i)) / 1e3;
    }
  }
  return std::ldexp(std::sqrt(2.0), 63) / 1e3;  // unreachable
}

/// Total sample count in a histogram.
std::uint64_t histogram_count(
    const std::array<std::atomic<std::uint64_t>, 64>& h) {
  std::uint64_t total = 0;
  for (const auto& b : h) total += b.load(std::memory_order_relaxed);
  return total;
}

/// Approximate sum of all samples in us: bucket geometric midpoints times
/// counts — the same sqrt(2) fidelity as the quantiles.
double histogram_sum_us(const std::array<std::atomic<std::uint64_t>, 64>& h) {
  double sum = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const std::uint64_t n = h[i].load(std::memory_order_relaxed);
    if (n != 0) {
      sum += static_cast<double>(n) *
             (std::ldexp(std::sqrt(2.0), static_cast<int>(i)) / 1e3);
    }
  }
  return sum;
}

/// Fills one per-stage digest from its histogram.
MetricsSnapshot::StageLatency stage_digest(
    const std::array<std::atomic<std::uint64_t>, 64>& h) {
  MetricsSnapshot::StageLatency d;
  d.count = histogram_count(h);
  if (d.count != 0) {
    d.p50_us = histogram_quantile(h, 0.50);
    d.p99_us = histogram_quantile(h, 0.99);
    d.p999_us = histogram_quantile(h, 0.999);
    d.sum_us = histogram_sum_us(h);
  }
  return d;
}

/// One label set of a Prometheus summary family: quantile lines + _sum +
/// _count (HELP/TYPE are emitted once per family by the caller).
void prom_summary(std::ostringstream& os, const char* name,
                  const std::string& labels, std::uint64_t count, double p50,
                  double p99, double p999, double sum) {
  const std::string sep = labels.empty() ? "" : ",";
  os << name << "{" << labels << sep << "quantile=\"0.5\"} " << p50 << "\n"
     << name << "{" << labels << sep << "quantile=\"0.99\"} " << p99 << "\n"
     << name << "{" << labels << sep << "quantile=\"0.999\"} " << p999 << "\n"
     << name << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << " "
     << sum << "\n"
     << name << "_count" << (labels.empty() ? "" : "{" + labels + "}") << " "
     << count << "\n";
}

}  // namespace

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchAssembly:
      return "batch_assembly";
    case Stage::kScan:
      return "scan";
    case Stage::kMerge:
      return "merge";
    case Stage::kNetRead:
      return "net_read";
    case Stage::kAdmission:
      return "admission";
    case Stage::kNetWrite:
      return "net_write";
  }
  return "unknown";
}

void Metrics::on_batch(std::size_t requests) noexcept {
  inc(batches_);
  batched_requests_.fetch_add(requests, std::memory_order_release);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < requests &&
         !max_batch_.compare_exchange_weak(prev, requests,
                                           std::memory_order_relaxed)) {
  }
}

std::size_t Metrics::bucket_of(double latency_us) noexcept {
  const double ns = latency_us * 1e3;
  if (!(ns >= 1.0)) return 0;  // sub-ns / NaN land in the first bucket
  if (ns >= 9.2e18) return 63;
  const auto n = static_cast<std::uint64_t>(ns);
  return static_cast<std::size_t>(std::bit_width(n) - 1);
}

void Metrics::on_completed(double latency_us) noexcept {
  inc(completed_);
  latency_buckets_[bucket_of(latency_us)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

void Metrics::on_stage(Stage stage, double latency_us) noexcept {
  stage_buckets_[static_cast<std::size_t>(stage)][bucket_of(latency_us)]
      .fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot Metrics::snapshot(std::size_t queue_depth) const {
  MetricsSnapshot s;
  // Read order matters for live snapshots: every request increments
  // `submitted` before any downstream counter (hit/miss, batch,
  // completion), so reading the downstream counters first — acquire to
  // order the loads — keeps the intuitive inequalities
  // (completed <= submitted, hits + misses <= submitted) true even
  // mid-serving. After a drain the snapshot is exact either way.
  s.completed = completed_.load(std::memory_order_acquire);
  s.cache_hits = cache_hits_.load(std::memory_order_acquire);
  s.cache_misses = cache_misses_.load(std::memory_order_acquire);
  s.batches = batches_.load(std::memory_order_acquire);
  s.batched_requests = batched_requests_.load(std::memory_order_acquire);
  s.coalesced = coalesced_.load(std::memory_order_acquire);
  s.submitted = submitted_.load(std::memory_order_acquire);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.max_batch_observed =
      static_cast<std::size_t>(max_batch_.load(std::memory_order_relaxed));
  s.queue_depth = queue_depth;
  s.mean_batch = s.batches == 0 ? 0.0
                                : static_cast<double>(s.batched_requests) /
                                      static_cast<double>(s.batches);
  s.p50_latency_us = histogram_quantile(latency_buckets_, 0.50);
  s.p99_latency_us = histogram_quantile(latency_buckets_, 0.99);
  s.p999_latency_us = histogram_quantile(latency_buckets_, 0.999);
  s.latency_sum_us = histogram_sum_us(latency_buckets_);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    s.stages[i] = stage_digest(stage_buckets_[i]);
  }
  return s;
}

void Metrics::merge(const Metrics& other) noexcept {
  // Same downstream-first acquire order as snapshot(): reading a request's
  // completion implies its earlier `submitted` increment is visible, so an
  // aggregate built dispatcher-sets-first, submit-side-set-last keeps
  // completed <= submitted mid-serving.
  const std::uint64_t completed = other.completed_.load(std::memory_order_acquire);
  const std::uint64_t hits = other.cache_hits_.load(std::memory_order_acquire);
  const std::uint64_t misses =
      other.cache_misses_.load(std::memory_order_acquire);
  const std::uint64_t batches = other.batches_.load(std::memory_order_acquire);
  const std::uint64_t batched =
      other.batched_requests_.load(std::memory_order_acquire);
  const std::uint64_t coalesced =
      other.coalesced_.load(std::memory_order_acquire);
  const std::uint64_t submitted =
      other.submitted_.load(std::memory_order_acquire);
  const std::uint64_t rejected = other.rejected_.load(std::memory_order_relaxed);
  const std::uint64_t max_batch =
      other.max_batch_.load(std::memory_order_relaxed);
  completed_.fetch_add(completed, std::memory_order_relaxed);
  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(misses, std::memory_order_relaxed);
  batches_.fetch_add(batches, std::memory_order_relaxed);
  batched_requests_.fetch_add(batched, std::memory_order_relaxed);
  coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
  submitted_.fetch_add(submitted, std::memory_order_relaxed);
  rejected_.fetch_add(rejected, std::memory_order_relaxed);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < max_batch &&
         !max_batch_.compare_exchange_weak(prev, max_batch,
                                           std::memory_order_relaxed)) {
  }
  for (std::size_t i = 0; i < latency_buckets_.size(); ++i) {
    const std::uint64_t n =
        other.latency_buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) latency_buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  for (std::size_t st = 0; st < kNumStages; ++st) {
    for (std::size_t i = 0; i < stage_buckets_[st].size(); ++i) {
      const std::uint64_t n =
          other.stage_buckets_[st][i].load(std::memory_order_relaxed);
      if (n != 0) {
        stage_buckets_[st][i].fetch_add(n, std::memory_order_relaxed);
      }
    }
  }
}

void Metrics::reset() noexcept {
  // Downstream-first, mirroring snapshot()'s read order in reverse effect:
  // clearing `completed` before `submitted` means a concurrent snapshot can
  // see old submits with new (zero) completions — completed <= submitted
  // holds — but never the inverted excess.
  for (auto& h : stage_buckets_) {
    for (auto& b : h) b.store(0, std::memory_order_relaxed);
  }
  for (auto& b : latency_buckets_) b.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_release);
  cache_hits_.store(0, std::memory_order_release);
  cache_misses_.store(0, std::memory_order_release);
  batches_.store(0, std::memory_order_release);
  batched_requests_.store(0, std::memory_order_release);
  coalesced_.store(0, std::memory_order_release);
  max_batch_.store(0, std::memory_order_release);
  rejected_.store(0, std::memory_order_release);
  submitted_.store(0, std::memory_order_release);
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream os;
  os << "requests: " << submitted << " submitted, " << completed
     << " completed, " << rejected << " rejected, " << queue_depth
     << " queued\n"
     << "cache:    " << cache_hits << " hits, " << cache_misses
     << " misses, " << coalesced << " coalesced in-batch\n"
     << "batches:  " << batches << " dispatched, mean " << mean_batch
     << " req/batch, max " << max_batch_observed << "\n"
     << "latency:  p50 ~ " << p50_latency_us << " us, p99 ~ "
     << p99_latency_us << " us, p99.9 ~ " << p999_latency_us
     << " us (power-of-2 bucket midpoints, +/- sqrt(2))";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageLatency& d = stages[i];
    os << "\nstage " << service::to_string(static_cast<Stage>(i)) << ": "
       << d.count
       << " samples, p50 ~ " << d.p50_us << " us, p99 ~ " << d.p99_us
       << " us, p99.9 ~ " << d.p999_us << " us";
  }
  if (!shard_rows_scanned.empty()) {
    os << "\nshards:   rows scanned per shard:";
    for (std::size_t i = 0; i < shard_rows_scanned.size(); ++i) {
      os << " [" << i << "] " << shard_rows_scanned[i];
    }
  }
  return os.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  const auto counter = [&](const char* name, const char* help,
                           std::uint64_t value) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " counter\n"
       << name << " " << value << "\n";
  };
  counter("factorhd_requests_submitted_total", "Accepted submit() calls.",
          submitted);
  counter("factorhd_requests_rejected_total",
          "Submits refused by queue backpressure.", rejected);
  counter("factorhd_requests_completed_total",
          "Futures fulfilled (including cache hits).", completed);
  counter("factorhd_cache_hits_total", "Requests served from the result cache.",
          cache_hits);
  counter("factorhd_cache_misses_total", "Requests enqueued for computation.",
          cache_misses);
  counter("factorhd_batches_total", "Micro-batches dispatched.", batches);
  counter("factorhd_batched_requests_total",
          "Requests carried by dispatched micro-batches.", batched_requests);
  counter("factorhd_coalesced_total", "Duplicate requests deduped in-batch.",
          coalesced);
  os << "# HELP factorhd_queue_depth Pending requests at scrape time.\n"
     << "# TYPE factorhd_queue_depth gauge\n"
     << "factorhd_queue_depth " << queue_depth << "\n";
  os << "# HELP factorhd_max_batch_observed Largest micro-batch dispatched.\n"
     << "# TYPE factorhd_max_batch_observed gauge\n"
     << "factorhd_max_batch_observed " << max_batch_observed << "\n";
  os << "# HELP factorhd_request_latency_us End-to-end request latency"
     << " (power-of-2 bucket midpoints, microseconds).\n"
     << "# TYPE factorhd_request_latency_us summary\n";
  prom_summary(os, "factorhd_request_latency_us", "", completed,
               p50_latency_us, p99_latency_us, p999_latency_us,
               latency_sum_us);
  os << "# HELP factorhd_stage_latency_us Per-pipeline-stage latency"
     << " (power-of-2 bucket midpoints, microseconds).\n"
     << "# TYPE factorhd_stage_latency_us summary\n";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageLatency& d = stages[i];
    const std::string labels =
        std::string("stage=\"") + service::to_string(static_cast<Stage>(i)) +
        "\"";
    prom_summary(os, "factorhd_stage_latency_us", labels, d.count, d.p50_us,
                 d.p99_us, d.p999_us, d.sum_us);
  }
  if (!shard_rows_scanned.empty()) {
    os << "# HELP factorhd_shard_rows_scanned_total Similarity measurements"
       << " charged to each scan shard.\n"
       << "# TYPE factorhd_shard_rows_scanned_total counter\n";
    for (std::size_t i = 0; i < shard_rows_scanned.size(); ++i) {
      os << "factorhd_shard_rows_scanned_total{shard=\"" << i << "\"} "
         << shard_rows_scanned[i] << "\n";
    }
  }
  return os.str();
}

}  // namespace factorhd::service
