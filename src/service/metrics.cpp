#include "service/metrics.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace factorhd::service {

namespace {

/// Quantile from the power-of-two histogram: the geometric midpoint (in us)
/// of the bucket containing the q-th latency. 0 when the histogram is empty.
double histogram_quantile(const std::array<std::atomic<std::uint64_t>, 64>& h,
                          double q) {
  std::uint64_t total = 0;
  for (const auto& b : h) total += b.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    seen += h[i].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      // Bucket i covers [2^i, 2^(i+1)) ns; report the geometric midpoint
      // 2^(i+0.5) in us — within sqrt(2) of the true bucketed quantile in
      // either direction. (The upper bound 2^(i+1) would overstate a
      // single-latency stream by up to 2x.)
      return std::ldexp(std::sqrt(2.0), static_cast<int>(i)) / 1e3;
    }
  }
  return std::ldexp(std::sqrt(2.0), 63) / 1e3;  // unreachable
}

}  // namespace

void Metrics::on_batch(std::size_t requests) noexcept {
  inc(batches_);
  batched_requests_.fetch_add(requests, std::memory_order_release);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < requests &&
         !max_batch_.compare_exchange_weak(prev, requests,
                                           std::memory_order_relaxed)) {
  }
}

std::size_t Metrics::bucket_of(double latency_us) noexcept {
  const double ns = latency_us * 1e3;
  if (!(ns >= 1.0)) return 0;  // sub-ns / NaN land in the first bucket
  if (ns >= 9.2e18) return 63;
  const auto n = static_cast<std::uint64_t>(ns);
  return static_cast<std::size_t>(std::bit_width(n) - 1);
}

void Metrics::on_completed(double latency_us) noexcept {
  inc(completed_);
  latency_buckets_[bucket_of(latency_us)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

MetricsSnapshot Metrics::snapshot(std::size_t queue_depth) const {
  MetricsSnapshot s;
  // Read order matters for live snapshots: every request increments
  // `submitted` before any downstream counter (hit/miss, batch,
  // completion), so reading the downstream counters first — acquire to
  // order the loads — keeps the intuitive inequalities
  // (completed <= submitted, hits + misses <= submitted) true even
  // mid-serving. After a drain the snapshot is exact either way.
  s.completed = completed_.load(std::memory_order_acquire);
  s.cache_hits = cache_hits_.load(std::memory_order_acquire);
  s.cache_misses = cache_misses_.load(std::memory_order_acquire);
  s.batches = batches_.load(std::memory_order_acquire);
  s.batched_requests = batched_requests_.load(std::memory_order_acquire);
  s.coalesced = coalesced_.load(std::memory_order_acquire);
  s.submitted = submitted_.load(std::memory_order_acquire);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.max_batch_observed =
      static_cast<std::size_t>(max_batch_.load(std::memory_order_relaxed));
  s.queue_depth = queue_depth;
  s.mean_batch = s.batches == 0 ? 0.0
                                : static_cast<double>(s.batched_requests) /
                                      static_cast<double>(s.batches);
  s.p50_latency_us = histogram_quantile(latency_buckets_, 0.50);
  s.p99_latency_us = histogram_quantile(latency_buckets_, 0.99);
  return s;
}

void Metrics::merge(const Metrics& other) noexcept {
  // Same downstream-first acquire order as snapshot(): reading a request's
  // completion implies its earlier `submitted` increment is visible, so an
  // aggregate built dispatcher-sets-first, submit-side-set-last keeps
  // completed <= submitted mid-serving.
  const std::uint64_t completed = other.completed_.load(std::memory_order_acquire);
  const std::uint64_t hits = other.cache_hits_.load(std::memory_order_acquire);
  const std::uint64_t misses =
      other.cache_misses_.load(std::memory_order_acquire);
  const std::uint64_t batches = other.batches_.load(std::memory_order_acquire);
  const std::uint64_t batched =
      other.batched_requests_.load(std::memory_order_acquire);
  const std::uint64_t coalesced =
      other.coalesced_.load(std::memory_order_acquire);
  const std::uint64_t submitted =
      other.submitted_.load(std::memory_order_acquire);
  const std::uint64_t rejected = other.rejected_.load(std::memory_order_relaxed);
  const std::uint64_t max_batch =
      other.max_batch_.load(std::memory_order_relaxed);
  completed_.fetch_add(completed, std::memory_order_relaxed);
  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(misses, std::memory_order_relaxed);
  batches_.fetch_add(batches, std::memory_order_relaxed);
  batched_requests_.fetch_add(batched, std::memory_order_relaxed);
  coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
  submitted_.fetch_add(submitted, std::memory_order_relaxed);
  rejected_.fetch_add(rejected, std::memory_order_relaxed);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < max_batch &&
         !max_batch_.compare_exchange_weak(prev, max_batch,
                                           std::memory_order_relaxed)) {
  }
  for (std::size_t i = 0; i < latency_buckets_.size(); ++i) {
    const std::uint64_t n =
        other.latency_buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) latency_buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream os;
  os << "requests: " << submitted << " submitted, " << completed
     << " completed, " << rejected << " rejected, " << queue_depth
     << " queued\n"
     << "cache:    " << cache_hits << " hits, " << cache_misses
     << " misses, " << coalesced << " coalesced in-batch\n"
     << "batches:  " << batches << " dispatched, mean " << mean_batch
     << " req/batch, max " << max_batch_observed << "\n"
     << "latency:  p50 ~ " << p50_latency_us << " us, p99 ~ "
     << p99_latency_us << " us (power-of-2 bucket midpoints, +/- sqrt(2))";
  return os.str();
}

}  // namespace factorhd::service
