#include "service/trace.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/env.hpp"

namespace factorhd::service {

namespace {

/// One stage span: [begin_ns, end_ns) with 0 meaning "stage not reached".
struct StageSpan {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

/// The per-stage decomposition of a trace, in pipeline order. Cache hits
/// only populate cache_lookup (they never enter the queue).
std::vector<StageSpan> stage_spans(const RequestTrace& t) {
  std::vector<StageSpan> spans;
  spans.push_back({"cache_lookup", t.submit_ns, t.cache_done_ns});
  spans.push_back({"queue_wait", t.enqueue_ns, t.dequeue_ns});
  spans.push_back({"batch_assembly", t.dequeue_ns, t.scan_start_ns});
  spans.push_back({"scan", t.scan_start_ns, t.scan_end_ns});
  spans.push_back({"merge", t.scan_end_ns, t.complete_ns});
  return spans;
}

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

void append_args(std::ostringstream& os, const RequestTrace& t) {
  os << "{\"cache_hit\":" << (t.cache_hit ? "true" : "false")
     << ",\"dispatcher\":" << t.dispatcher
     << ",\"batch_size\":" << t.batch_size << ",\"shards\":" << t.shards
     << ",\"rows_scanned\":" << t.rows_scanned << ",\"probes\":" << t.probes
     << ",\"exact_rescans\":" << t.exact_rescans
     << ",\"rounds\":" << t.rounds << "}";
}

}  // namespace

TraceConfig trace_config_from_env() {
  TraceConfig config;
  config.sample_every =
      util::env_size_t("FACTORHD_TRACE_SAMPLE", 0, 0, std::size_t{1} << 30);
  config.ring_capacity =
      util::env_size_t("FACTORHD_TRACE_RING", 4096, 1, std::size_t{1} << 24);
  config.slow_query_us =
      util::env_size_t("FACTORHD_SLOW_QUERY_US", 0, 0, std::size_t{1} << 40);
  return config;
}

TraceRing::TraceRing(std::size_t capacity, std::size_t sample_every)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      sample_every_(sample_every),
      origin_(std::chrono::steady_clock::now()),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

std::uint64_t TraceRing::since_origin_ns(
    std::chrono::steady_clock::time_point tp) const noexcept {
  const auto delta =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - origin_)
          .count();
  return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

void TraceRing::record(const RequestTrace& trace) noexcept {
  const std::size_t idx =
      head_.fetch_add(1, std::memory_order_relaxed) % capacity_;
  Slot& slot = slots_[idx];
  std::uint8_t expected = slot.state.load(std::memory_order_relaxed);
  // A slot mid-read (collect) or mid-write (a lapped writer) is simply
  // skipped: dropping one sample keeps recording wait-free, which matters
  // more than the sample on a serving hot path.
  if (expected == kWriting ||
      !slot.state.compare_exchange_strong(expected, kWriting,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.trace = trace;
  slot.state.store(kFull, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RequestTrace> TraceRing::collect() const {
  std::vector<RequestTrace> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::uint8_t expected = kFull;
    // Claim the slot for the copy so a concurrent writer cannot tear it;
    // writers that lose the claim drop (and count) their record.
    if (!slot.state.compare_exchange_strong(expected, kWriting,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      continue;
    }
    out.push_back(slot.trace);
    slot.state.store(kFull, std::memory_order_release);
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.id < b.id;
            });
  return out;
}

std::size_t TraceRing::occupancy() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (slots_[i].state.load(std::memory_order_relaxed) == kFull) ++n;
  }
  return n;
}

std::string chrome_trace_json(std::span<const RequestTrace> traces) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const char* name, std::uint64_t id, double ts_us,
                        double dur_us, const RequestTrace* args) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << name << "\",\"cat\":\"factorhd\",\"ph\":\"X\""
       << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us
       << ",\"pid\":1,\"tid\":" << id;
    if (args != nullptr) {
      os << ",\"args\":";
      append_args(os, *args);
    }
    os << "}";
  };
  for (const RequestTrace& t : traces) {
    const std::uint64_t end_ns =
        t.complete_ns != 0 ? t.complete_ns : t.cache_done_ns;
    emit("request", t.id, to_us(t.submit_ns),
         to_us(end_ns > t.submit_ns ? end_ns - t.submit_ns : 0), &t);
    for (const StageSpan& s : stage_spans(t)) {
      // A zero endpoint marks a stage the request never reached (cache
      // hits skip the queue-to-merge stages entirely).
      if (s.begin_ns == 0 || s.end_ns == 0 || s.end_ns < s.begin_ns) continue;
      emit(s.name, t.id, to_us(s.begin_ns), to_us(s.end_ns - s.begin_ns),
           nullptr);
    }
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

SlowQueryLog::SlowQueryLog(std::size_t threshold_us, std::ostream* sink,
                           std::size_t min_interval_ms)
    : threshold_us_(threshold_us),
      min_interval_ns_(static_cast<std::int64_t>(min_interval_ms) * 1'000'000),
      sink_(sink != nullptr ? sink : &std::cerr) {}

std::string SlowQueryLog::format(const RequestTrace& t) {
  std::ostringstream os;
  const std::uint64_t end_ns =
      t.complete_ns != 0 ? t.complete_ns : t.cache_done_ns;
  os << "{\"slow_query\":{\"id\":" << t.id << ",\"e2e_us\":"
     << to_us(end_ns > t.submit_ns ? end_ns - t.submit_ns : 0)
     << ",\"stages_us\":{";
  bool first = true;
  for (const StageSpan& s : stage_spans(t)) {
    if (s.begin_ns == 0 || s.end_ns == 0 || s.end_ns < s.begin_ns) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << s.name << "\":" << to_us(s.end_ns - s.begin_ns);
  }
  os << "},\"facts\":";
  append_args(os, t);
  os << "}}";
  return os.str();
}

void SlowQueryLog::observe(const RequestTrace& trace) noexcept {
  if (threshold_us_ == 0) return;
  const std::uint64_t end_ns =
      trace.complete_ns != 0 ? trace.complete_ns : trace.cache_done_ns;
  if (end_ns <= trace.submit_ns) return;
  const std::uint64_t e2e_ns = end_ns - trace.submit_ns;
  if (e2e_ns < static_cast<std::uint64_t>(threshold_us_) * 1000) return;
  // Rate limit: one line per min_interval, claimed by CAS on the last-emit
  // timestamp so concurrent completions cannot double-emit inside one
  // window. complete_ns is monotone enough for a limiter.
  const auto now_ns = static_cast<std::int64_t>(trace.complete_ns);
  std::int64_t last = last_emit_ns_.load(std::memory_order_relaxed);
  if (last >= 0 && now_ns - last < min_interval_ns_) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!last_emit_ns_.compare_exchange_strong(last, now_ns,
                                             std::memory_order_relaxed)) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  try {
    (*sink_) << format(trace) << "\n";
    emitted_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // A failing sink must never take down the serving path.
  }
}

}  // namespace factorhd::service
