#include "service/engine.hpp"

#include <algorithm>
#include <utility>

namespace factorhd::service {

namespace {

std::shared_ptr<const Model> require_model(std::shared_ptr<const Model> m) {
  if (!m) {
    throw std::invalid_argument("FactorizationEngine: null model");
  }
  return m;
}

double us_since(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) noexcept {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

FactorizationEngine::FactorizationEngine(std::shared_ptr<const Model> model,
                                         ServiceOptions opts)
    : model_(require_model(std::move(model))),
      opts_(opts),
      batcher_(model_->factorizer(),
               core::BatchOptions{.num_threads = opts.batch_threads}),
      cache_(opts.cache_capacity, opts.cache_shards),
      trace_ring_(opts.trace_ring, opts.trace_sample),
      slow_log_(opts.slow_query_us) {
  if (opts_.max_batch == 0) {
    throw std::invalid_argument("FactorizationEngine: max_batch must be >= 1");
  }
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument(
        "FactorizationEngine: queue_capacity must be >= 1");
  }
  if (opts_.dispatchers == 0) {
    // Shard affinity: one dispatcher per shard of the model's widest
    // scatter-gather partition, so dispatch width follows a reshard
    // automatically. shards() >= 1, so this never resolves to 0.
    opts_.dispatchers = model_->factorizer().shards();
  }
  dispatchers_.reserve(opts_.dispatchers);
  batcher_threads_.reserve(opts_.dispatchers);
  for (std::size_t i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.push_back(std::make_unique<DispatcherState>());
    DispatcherState& st = *dispatchers_.back();
    const auto index = static_cast<std::uint32_t>(i);
    batcher_threads_.emplace_back(
        [this, &st, index] { batcher_loop(st, index); });
  }
}

FactorizationEngine::~FactorizationEngine() { stop(); }

std::future<core::FactorizeResult> FactorizationEngine::submit(
    hdc::Hypervector target, core::FactorizeOptions opts) {
  if (target.dim() != model_->books().dim()) {
    throw std::invalid_argument(
        "FactorizationEngine::submit: target dimension " +
        std::to_string(target.dim()) + " != model dimension " +
        std::to_string(model_->books().dim()));
  }
  {
    // Checked before the cache probe too: a stopped engine must refuse
    // every submit, including ones the cache could answer.
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw EngineStoppedError("engine is stopped");
    }
  }
  const auto start = std::chrono::steady_clock::now();
  // Every request claims an id from the global sequence when observability
  // is on, sampled or not — the sampled SET (id % N == 0) stays a pure
  // function of the request count across dispatcher/thread counts.
  const bool observing = trace_ring_.enabled() || slow_log_.enabled();
  std::uint64_t trace_id = 0;
  bool traced = false;
  if (observing) {
    trace_id = trace_ring_.next_id();
    traced = trace_ring_.sampled(trace_id);
  }
  const std::uint64_t key = request_key(target, opts);

  // Fast path: replay a previously computed result. Safe because lookup
  // verifies full (target, opts) equality, and factorization is pure.
  if (auto hit = cache_.lookup(key, target, opts)) {
    const auto cache_done = std::chrono::steady_clock::now();
    metrics_.on_submitted();
    metrics_.on_cache_hit();
    metrics_.on_stage(Stage::kCacheLookup, us_between(start, cache_done));
    std::promise<core::FactorizeResult> ready;
    auto fut = ready.get_future();
    ready.set_value(*std::move(hit));
    metrics_.on_completed(us_since(start));
    if (traced) {
      RequestTrace t;
      t.id = trace_id;
      t.submit_ns = trace_ring_.since_origin_ns(start);
      t.cache_done_ns = trace_ring_.since_origin_ns(cache_done);
      t.complete_ns =
          trace_ring_.since_origin_ns(std::chrono::steady_clock::now());
      t.cache_hit = true;
      t.shards = model_->factorizer().shards();
      t.rows_scanned = hit->similarity_ops;
      t.probes = hit->probes;
      t.exact_rescans = hit->exact_rescans;
      t.rounds = hit->rounds;
      trace_ring_.record(t);
    }
    return fut;
  }
  const auto cache_done = std::chrono::steady_clock::now();

  Request req;
  req.target = std::move(target);
  req.opts = std::move(opts);
  req.key = key;
  req.submitted = start;
  req.cache_done = cache_done;
  req.trace_id = trace_id;
  req.traced = traced;
  auto fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      throw EngineStoppedError("engine is stopped");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      if (opts_.reject_when_full) {
        metrics_.on_rejected();
        throw QueueFullError();
      }
      queue_space_.wait(lock, [this] {
        return stopping_ || queue_.size() < opts_.queue_capacity;
      });
      if (stopping_) {
        // The wakeup came from stop(), not from freed space: the request
        // was never enqueued and will never complete.
        throw EngineStoppedError(
            "engine stopped while this request was blocked on backpressure "
            "(request was never enqueued)");
      }
    }
    req.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(req));
    // Counted while still holding the queue lock: the batcher cannot pop
    // (and thus complete) this request before the lock is released, so a
    // concurrent metrics snapshot never observes completed > submitted.
    metrics_.on_submitted();
    metrics_.on_cache_miss();
    metrics_.on_stage(Stage::kCacheLookup, us_between(start, cache_done));
  }
  queue_ready_.notify_one();
  return fut;
}

std::vector<FactorizationEngine::Request> FactorizationEngine::next_flight() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping and fully drained

    // Dynamic micro-batching: give late arrivals a chance to coalesce, but
    // never hold the oldest request past its max_delay_us budget. While
    // draining a shutdown there is nothing to wait for.
    if (queue_.size() < opts_.max_batch && opts_.max_delay_us > 0 &&
        !stopping_) {
      const auto deadline = queue_.front().submitted +
                            std::chrono::microseconds(opts_.max_delay_us);
      queue_ready_.wait_until(lock, deadline, [this] {
        return stopping_ || queue_.size() >= opts_.max_batch;
      });
      // A sibling dispatcher may have drained the queue while we waited.
      if (queue_.empty()) continue;
    }

    const std::size_t n = std::min(queue_.size(), opts_.max_batch);
    std::vector<Request> flight;
    flight.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      flight.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    queue_space_.notify_all();
    // One dequeue stamp for the whole flight — it left the queue as a unit.
    const auto dequeued = std::chrono::steady_clock::now();
    for (Request& r : flight) r.dequeued = dequeued;
    return flight;
  }
}

void FactorizationEngine::run_flight(std::vector<Request> flight,
                                     DispatcherState& state,
                                     std::uint32_t index) {
  Metrics& metrics = state.metrics;
  // Group members by identical options — BatchFactorizer applies one
  // FactorizeOptions to a whole batch, and identical options are also what
  // makes two results interchangeable. Flights are homogeneous in the
  // common case, so the quadratic-looking scans below are over tiny sets.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < flight.size(); ++i) {
    bool placed = false;
    for (auto& g : groups) {
      if (flight[g.front()].opts == flight[i].opts) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (const auto& group : groups) {
    const core::FactorizeOptions& gopts = flight[group.front()].opts;

    // Coalesce duplicate targets within the group: factorize each distinct
    // target once and fan the (identical, deterministic) result out to
    // every duplicate's promise. rep[j] indexes into `targets`.
    //
    // The dedup key is global — the full (target, opts) identity: groups
    // are formed by exact options equality above, and within a group two
    // requests coalesce only when both the request_key fingerprint AND the
    // full target hypervector compare equal. Nothing here depends on the
    // model's scan backend or shard partition, so coalescing under a
    // kSharded model merges exactly the requests it would merge unsharded
    // (pinned by the kSharded coalescing test in
    // tests/test_service_engine.cpp).
    std::vector<hdc::Hypervector> targets;
    std::vector<std::uint64_t> target_keys;
    std::vector<std::size_t> rep(group.size());
    for (std::size_t j = 0; j < group.size(); ++j) {
      const Request& r = flight[group[j]];
      bool found = false;
      for (std::size_t u = 0; u < targets.size(); ++u) {
        if (target_keys[u] == r.key && targets[u] == r.target) {
          rep[j] = u;
          found = true;
          metrics.on_coalesced();
          break;
        }
      }
      if (!found) {
        rep[j] = targets.size();
        targets.push_back(r.target);
        target_keys.push_back(r.key);
      }
    }

    metrics.on_batch(group.size());
    const auto scan_start = std::chrono::steady_clock::now();
    std::vector<core::FactorizeResult> results;
    try {
      results = batcher_.factorize_all(targets, gopts);
    } catch (...) {
      const auto err = std::current_exception();
      for (const std::size_t j : group) {
        flight[j].promise.set_exception(err);
        // Exceptionally fulfilled is still completed: the drained-engine
        // invariant completed == submitted must survive a failed flight.
        metrics.on_completed(us_since(flight[j].submitted));
      }
      continue;
    }
    const auto scan_end = std::chrono::steady_clock::now();

    for (std::size_t u = 0; u < targets.size(); ++u) {
      cache_.insert(target_keys[u], targets[u], gopts, results[u]);
    }
    const bool build_traces = slow_log_.enabled();
    for (std::size_t j = 0; j < group.size(); ++j) {
      Request& r = flight[group[j]];
      const core::FactorizeResult& result = results[rep[j]];
      r.promise.set_value(result);
      const auto done = std::chrono::steady_clock::now();
      metrics.on_stage(Stage::kQueueWait, us_between(r.enqueued, r.dequeued));
      metrics.on_stage(Stage::kBatchAssembly,
                       us_between(r.dequeued, scan_start));
      metrics.on_stage(Stage::kScan, us_between(scan_start, scan_end));
      metrics.on_stage(Stage::kMerge, us_between(scan_end, done));
      metrics.on_completed(us_since(r.submitted));
      if (r.traced || build_traces) {
        RequestTrace t;
        t.id = r.trace_id;
        t.submit_ns = trace_ring_.since_origin_ns(r.submitted);
        t.cache_done_ns = trace_ring_.since_origin_ns(r.cache_done);
        t.enqueue_ns = trace_ring_.since_origin_ns(r.enqueued);
        t.dequeue_ns = trace_ring_.since_origin_ns(r.dequeued);
        t.scan_start_ns = trace_ring_.since_origin_ns(scan_start);
        t.scan_end_ns = trace_ring_.since_origin_ns(scan_end);
        t.complete_ns = trace_ring_.since_origin_ns(done);
        t.cache_hit = false;
        t.dispatcher = index;
        t.batch_size = static_cast<std::uint32_t>(group.size());
        t.shards = model_->factorizer().shards();
        t.rows_scanned = result.similarity_ops;
        t.probes = result.probes;
        t.exact_rescans = result.exact_rescans;
        t.rounds = result.rounds;
        slow_log_.observe(t);
        if (r.traced) trace_ring_.record(t);
      }
    }
  }
}

void FactorizationEngine::batcher_loop(DispatcherState& state,
                                       std::uint32_t index) {
  while (true) {
    std::vector<Request> flight = next_flight();
    if (flight.empty()) return;
    const std::size_t n = flight.size();
    state.inflight.fetch_add(n, std::memory_order_relaxed);
    run_flight(std::move(flight), state, index);
    state.inflight.fetch_sub(n, std::memory_order_relaxed);
  }
}

void FactorizationEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  // Serialized so concurrent stop() calls (e.g. an explicit stop racing
  // the destructor from another owner) never double-join.
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& t : batcher_threads_) {
    if (t.joinable()) t.join();
  }
}

MetricsSnapshot FactorizationEngine::metrics() const {
  // Aggregate into a local set: dispatcher (compute-side) sets first, the
  // submit-side set last. Reading a request's completion from a dispatcher
  // set implies its earlier `submitted` increment is already visible, so
  // merging submitted-last keeps completed <= submitted in live snapshots;
  // after a drain the aggregate is exact.
  Metrics agg;
  for (const auto& d : dispatchers_) agg.merge(d->metrics);
  agg.merge(metrics_);
  MetricsSnapshot snap = agg.snapshot(queue_depth());
  snap.shard_rows_scanned = model_->factorizer().shard_rows_scanned();
  return snap;
}

std::vector<FactorizationEngine::DispatcherStats>
FactorizationEngine::dispatcher_stats() const {
  std::vector<DispatcherStats> out;
  out.reserve(dispatchers_.size());
  for (const auto& d : dispatchers_) {
    DispatcherStats s;
    s.metrics = d->metrics.snapshot(0);
    s.inflight = d->inflight.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void FactorizationEngine::reset_metrics() noexcept {
  // Dispatcher (compute-side) sets hold completions; the submit-side set
  // holds submits. Clearing completions first keeps completed <= submitted
  // for any snapshot interleaved with the reset.
  for (const auto& d : dispatchers_) d->metrics.reset();
  metrics_.reset();
}

std::size_t FactorizationEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace factorhd::service
