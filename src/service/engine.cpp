#include "service/engine.hpp"

#include <algorithm>
#include <utility>

namespace factorhd::service {

namespace {

std::shared_ptr<const Model> require_model(std::shared_ptr<const Model> m) {
  if (!m) {
    throw std::invalid_argument("FactorizationEngine: null model");
  }
  return m;
}

double us_since(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

FactorizationEngine::FactorizationEngine(std::shared_ptr<const Model> model,
                                         ServiceOptions opts)
    : model_(require_model(std::move(model))),
      opts_(opts),
      batcher_(model_->factorizer(),
               core::BatchOptions{.num_threads = opts.batch_threads}),
      cache_(opts.cache_capacity, opts.cache_shards) {
  if (opts_.max_batch == 0) {
    throw std::invalid_argument("FactorizationEngine: max_batch must be >= 1");
  }
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument(
        "FactorizationEngine: queue_capacity must be >= 1");
  }
  if (opts_.dispatchers == 0) {
    // Shard affinity: one dispatcher per shard of the model's widest
    // scatter-gather partition, so dispatch width follows a reshard
    // automatically. shards() >= 1, so this never resolves to 0.
    opts_.dispatchers = model_->factorizer().shards();
  }
  dispatcher_metrics_.reserve(opts_.dispatchers);
  batcher_threads_.reserve(opts_.dispatchers);
  for (std::size_t i = 0; i < opts_.dispatchers; ++i) {
    dispatcher_metrics_.push_back(std::make_unique<Metrics>());
    Metrics& m = *dispatcher_metrics_.back();
    batcher_threads_.emplace_back([this, &m] { batcher_loop(m); });
  }
}

FactorizationEngine::~FactorizationEngine() { stop(); }

std::future<core::FactorizeResult> FactorizationEngine::submit(
    hdc::Hypervector target, core::FactorizeOptions opts) {
  if (target.dim() != model_->books().dim()) {
    throw std::invalid_argument(
        "FactorizationEngine::submit: target dimension " +
        std::to_string(target.dim()) + " != model dimension " +
        std::to_string(model_->books().dim()));
  }
  {
    // Checked before the cache probe too: a stopped engine must refuse
    // every submit, including ones the cache could answer.
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw EngineStoppedError("engine is stopped");
    }
  }
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t key = request_key(target, opts);

  // Fast path: replay a previously computed result. Safe because lookup
  // verifies full (target, opts) equality, and factorization is pure.
  if (auto hit = cache_.lookup(key, target, opts)) {
    metrics_.on_submitted();
    metrics_.on_cache_hit();
    std::promise<core::FactorizeResult> ready;
    auto fut = ready.get_future();
    ready.set_value(*std::move(hit));
    metrics_.on_completed(us_since(start));
    return fut;
  }

  Request req;
  req.target = std::move(target);
  req.opts = std::move(opts);
  req.key = key;
  req.submitted = start;
  auto fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      throw EngineStoppedError("engine is stopped");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      if (opts_.reject_when_full) {
        metrics_.on_rejected();
        throw QueueFullError();
      }
      queue_space_.wait(lock, [this] {
        return stopping_ || queue_.size() < opts_.queue_capacity;
      });
      if (stopping_) {
        // The wakeup came from stop(), not from freed space: the request
        // was never enqueued and will never complete.
        throw EngineStoppedError(
            "engine stopped while this request was blocked on backpressure "
            "(request was never enqueued)");
      }
    }
    queue_.push_back(std::move(req));
    // Counted while still holding the queue lock: the batcher cannot pop
    // (and thus complete) this request before the lock is released, so a
    // concurrent metrics snapshot never observes completed > submitted.
    metrics_.on_submitted();
    metrics_.on_cache_miss();
  }
  queue_ready_.notify_one();
  return fut;
}

std::vector<FactorizationEngine::Request> FactorizationEngine::next_flight() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping and fully drained

    // Dynamic micro-batching: give late arrivals a chance to coalesce, but
    // never hold the oldest request past its max_delay_us budget. While
    // draining a shutdown there is nothing to wait for.
    if (queue_.size() < opts_.max_batch && opts_.max_delay_us > 0 &&
        !stopping_) {
      const auto deadline = queue_.front().submitted +
                            std::chrono::microseconds(opts_.max_delay_us);
      queue_ready_.wait_until(lock, deadline, [this] {
        return stopping_ || queue_.size() >= opts_.max_batch;
      });
      // A sibling dispatcher may have drained the queue while we waited.
      if (queue_.empty()) continue;
    }

    const std::size_t n = std::min(queue_.size(), opts_.max_batch);
    std::vector<Request> flight;
    flight.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      flight.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    queue_space_.notify_all();
    return flight;
  }
}

void FactorizationEngine::run_flight(std::vector<Request> flight,
                                     Metrics& metrics) {
  // Group members by identical options — BatchFactorizer applies one
  // FactorizeOptions to a whole batch, and identical options are also what
  // makes two results interchangeable. Flights are homogeneous in the
  // common case, so the quadratic-looking scans below are over tiny sets.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < flight.size(); ++i) {
    bool placed = false;
    for (auto& g : groups) {
      if (flight[g.front()].opts == flight[i].opts) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (const auto& group : groups) {
    const core::FactorizeOptions& gopts = flight[group.front()].opts;

    // Coalesce duplicate targets within the group: factorize each distinct
    // target once and fan the (identical, deterministic) result out to
    // every duplicate's promise. rep[j] indexes into `targets`.
    //
    // The dedup key is global — the full (target, opts) identity: groups
    // are formed by exact options equality above, and within a group two
    // requests coalesce only when both the request_key fingerprint AND the
    // full target hypervector compare equal. Nothing here depends on the
    // model's scan backend or shard partition, so coalescing under a
    // kSharded model merges exactly the requests it would merge unsharded
    // (pinned by the kSharded coalescing test in
    // tests/test_service_engine.cpp).
    std::vector<hdc::Hypervector> targets;
    std::vector<std::uint64_t> target_keys;
    std::vector<std::size_t> rep(group.size());
    for (std::size_t j = 0; j < group.size(); ++j) {
      const Request& r = flight[group[j]];
      bool found = false;
      for (std::size_t u = 0; u < targets.size(); ++u) {
        if (target_keys[u] == r.key && targets[u] == r.target) {
          rep[j] = u;
          found = true;
          metrics.on_coalesced();
          break;
        }
      }
      if (!found) {
        rep[j] = targets.size();
        targets.push_back(r.target);
        target_keys.push_back(r.key);
      }
    }

    metrics.on_batch(group.size());
    std::vector<core::FactorizeResult> results;
    try {
      results = batcher_.factorize_all(targets, gopts);
    } catch (...) {
      const auto err = std::current_exception();
      for (const std::size_t j : group) {
        flight[j].promise.set_exception(err);
        // Exceptionally fulfilled is still completed: the drained-engine
        // invariant completed == submitted must survive a failed flight.
        metrics.on_completed(us_since(flight[j].submitted));
      }
      continue;
    }

    for (std::size_t u = 0; u < targets.size(); ++u) {
      cache_.insert(target_keys[u], targets[u], gopts, results[u]);
    }
    for (std::size_t j = 0; j < group.size(); ++j) {
      Request& r = flight[group[j]];
      r.promise.set_value(results[rep[j]]);
      metrics.on_completed(us_since(r.submitted));
    }
  }
}

void FactorizationEngine::batcher_loop(Metrics& metrics) {
  while (true) {
    std::vector<Request> flight = next_flight();
    if (flight.empty()) return;
    run_flight(std::move(flight), metrics);
  }
}

void FactorizationEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();
  // Serialized so concurrent stop() calls (e.g. an explicit stop racing
  // the destructor from another owner) never double-join.
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& t : batcher_threads_) {
    if (t.joinable()) t.join();
  }
}

MetricsSnapshot FactorizationEngine::metrics() const {
  // Aggregate into a local set: dispatcher (compute-side) sets first, the
  // submit-side set last. Reading a request's completion from a dispatcher
  // set implies its earlier `submitted` increment is already visible, so
  // merging submitted-last keeps completed <= submitted in live snapshots;
  // after a drain the aggregate is exact.
  Metrics agg;
  for (const auto& m : dispatcher_metrics_) agg.merge(*m);
  agg.merge(metrics_);
  return agg.snapshot(queue_depth());
}

std::size_t FactorizationEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace factorhd::service
