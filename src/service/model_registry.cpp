#include "service/model_registry.hpp"

#include <exception>
#include <utility>

#include "service/model_snapshot.hpp"
#include "taxonomy/io.hpp"

namespace factorhd::service {

Model::Model(std::string name, tax::TaxonomyCodebooks books,
             hdc::ScanBackend backend, const core::TierSnapshots* snapshots,
             std::optional<hdc::kernels::ShardedConfig> sharded)
    : name_(std::move(name)),
      books_(std::move(books)),
      backend_(backend),
      sharded_(sharded),
      encoder_(books_),
      factorizer_(encoder_, backend, snapshots, sharded) {}

std::shared_ptr<const Model> Model::make(
    std::string name, tax::TaxonomyCodebooks books, hdc::ScanBackend backend,
    const core::TierSnapshots* snapshots,
    std::optional<hdc::kernels::ShardedConfig> sharded) {
  return std::make_shared<const Model>(std::move(name), std::move(books),
                                       backend, snapshots, sharded);
}

std::size_t Model::num_classes() const noexcept {
  return books_.taxonomy().num_classes();
}

std::shared_ptr<const Model> ModelRegistry::load_file(
    const std::string& name, const std::string& path,
    hdc::ScanBackend backend) {
  // Load and pack outside the lock: a slow disk or a large codebook set
  // must not stall concurrent get() calls.
  auto books = tax::load_codebooks_file(path);
  // A sidecar only ever saves build time: every record is re-verified
  // against the codebooks before adoption, so a missing, corrupt, or stale
  // sidecar degrades to the plain rebuild instead of failing the load.
  core::TierSnapshots snapshots;
  try {
    snapshots = load_model_snapshots(model_snapshot_path(path));
  } catch (const std::exception&) {
    snapshots.clear();
  }
  auto model = Model::make(name, std::move(books), backend,
                           snapshots.empty() ? nullptr : &snapshots);
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = model;
  return model;
}

std::shared_ptr<const Model> ModelRegistry::add(
    const std::string& name, tax::TaxonomyCodebooks books,
    hdc::ScanBackend backend,
    std::optional<hdc::kernels::ShardedConfig> sharded) {
  auto model = Model::make(name, std::move(books), backend, nullptr, sharded);
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = model;
  return model;
}

std::shared_ptr<const Model> ModelRegistry::reshard(const std::string& name,
                                                    std::size_t shards) {
  const auto old = get(name);
  if (!old) return nullptr;
  // Rebuild outside the lock, exactly like a reload: copying the codebooks
  // and re-packing the planes is the slow part, and get() must keep serving
  // the current model throughout. shards == 1 rebuilds unsharded (kAuto with
  // an explicit single-shard config never partitions).
  hdc::kernels::ShardedConfig cfg;
  cfg.shards = shards;
  auto model = Model::make(name, old->books(), old->requested_backend(),
                           nullptr, cfg);
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = model;
  return model;
}

std::shared_ptr<const Model> ModelRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

}  // namespace factorhd::service
