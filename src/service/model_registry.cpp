#include "service/model_registry.hpp"

#include <utility>

#include "taxonomy/io.hpp"

namespace factorhd::service {

Model::Model(std::string name, tax::TaxonomyCodebooks books,
             hdc::ScanBackend backend)
    : name_(std::move(name)),
      books_(std::move(books)),
      encoder_(books_),
      factorizer_(encoder_, backend) {}

std::shared_ptr<const Model> Model::make(std::string name,
                                         tax::TaxonomyCodebooks books,
                                         hdc::ScanBackend backend) {
  return std::make_shared<const Model>(std::move(name), std::move(books),
                                       backend);
}

std::size_t Model::num_classes() const noexcept {
  return books_.taxonomy().num_classes();
}

std::shared_ptr<const Model> ModelRegistry::load_file(
    const std::string& name, const std::string& path,
    hdc::ScanBackend backend) {
  // Load and pack outside the lock: a slow disk or a large codebook set
  // must not stall concurrent get() calls.
  auto model = Model::make(name, tax::load_codebooks_file(path), backend);
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = model;
  return model;
}

std::shared_ptr<const Model> ModelRegistry::add(const std::string& name,
                                                tax::TaxonomyCodebooks books,
                                                hdc::ScanBackend backend) {
  auto model = Model::make(name, std::move(books), backend);
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = model;
  return model;
}

std::shared_ptr<const Model> ModelRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

}  // namespace factorhd::service
