// ResultCache: sharded LRU cache of factorization results.
//
// Factorization is a pure function of (target HV, FactorizeOptions), so
// results of repeated requests can be replayed verbatim. The cache keys
// entries by a 64-bit content fingerprint (hdc::hash_hypervector mixed with
// an options fingerprint) and — because 64 bits is a fingerprint, not a
// proof — stores the full target and options alongside the result and
// verifies them on lookup, so a hash collision degrades to a miss, never to
// a wrong answer. Bit-identical serving semantics are preserved
// unconditionally.
//
// Sharding: the key space is split across independently locked shards so
// concurrent submit() fast paths contend only 1/shards of the time. Each
// shard runs its own LRU list; the capacity is distributed exactly —
// capacity / shards per shard with the remainder spread one entry each over
// the first shards — so the aggregate bound is the requested capacity, not
// a rounded-up multiple (size() <= capacity() always holds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/factorizer.hpp"
#include "hdc/hypervector.hpp"

namespace factorhd::service {

/// 64-bit fingerprint of a FactorizeOptions value (field-wise, including
/// selected_classes order). Equal options always fingerprint equal.
[[nodiscard]] std::uint64_t fingerprint_options(
    const core::FactorizeOptions& opts) noexcept;

/// Combined cache key of a request: content hash of the target mixed with
/// the options fingerprint.
[[nodiscard]] std::uint64_t request_key(
    const hdc::Hypervector& target,
    const core::FactorizeOptions& opts) noexcept;

/// Sharded LRU cache of factorization results, keyed by 64-bit request
/// fingerprints.
///
/// \par Contract (collision ⇒ miss)
/// Keys are hdc::hash_hypervector fingerprints mixed with
/// fingerprint_options — fingerprints, not proofs of equality. The cache
/// therefore stores the full `(target, options)` pair with every entry
/// and lookup() serves a result only after verifying both by exact
/// equality (components and every option field). A fingerprint collision
/// consequently degrades to a cache *miss* (the request is recomputed),
/// never to a wrong answer; insert() under a colliding key simply
/// replaces the resident entry (the cache is best-effort storage —
/// correctness lives entirely in lookup verification). This is what lets
/// the serving engine promise bit-identical results with the cache on or
/// off (tests/test_service_cache.cpp and the engine differential suite
/// assert it).
///
/// \par Thread safety
/// All methods are safe for concurrent use; the key space is split across
/// independently locked shards (each with its own LRU list), so
/// concurrent fast paths contend only 1/shards of the time.
class ResultCache {
 public:
  /// \param capacity Total entry budget; 0 disables the cache (lookups miss,
  ///   inserts are dropped).
  /// \param shards Number of independently locked shards; clamped to at
  ///   least 1 and at most `capacity` (so every shard holds >= 1 entry).
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  /// \return The exact aggregate entry bound (the constructor's `capacity`):
  ///   per-shard caps sum to it, so size() can never exceed it.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// \return Entries currently resident (sums shard sizes; approximate while
  ///   writers are active).
  [[nodiscard]] std::size_t size() const;

  /// Looks up the result of (target, opts) under `key` (= request_key of
  /// the pair, passed in because callers already computed it). A hit
  /// requires full equality of target and options with the stored entry —
  /// fingerprint collisions report as misses. Hits refresh LRU recency.
  /// \return The cached result, or nullopt.
  [[nodiscard]] std::optional<core::FactorizeResult> lookup(
      std::uint64_t key, const hdc::Hypervector& target,
      const core::FactorizeOptions& opts);

  /// Inserts (or refreshes) the result of (target, opts), evicting the
  /// shard's least-recently-used entry when the shard is full. Key
  /// collisions overwrite: the cache is best-effort storage, correctness
  /// lives in lookup's verification.
  void insert(std::uint64_t key, const hdc::Hypervector& target,
              const core::FactorizeOptions& opts,
              core::FactorizeResult result);

  /// Drops every entry (all shards).
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    hdc::Hypervector target;
    core::FactorizeOptions opts;
    core::FactorizeResult result;
  };
  struct Shard {
    std::mutex mu;
    /// This shard's exact entry budget (>= 1; caps sum to capacity_).
    std::size_t cap = 0;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) noexcept {
    return *shards_[static_cast<std::size_t>(key) % shards_.size()];
  }

  std::size_t capacity_ = 0;  ///< exact aggregate bound; 0 = disabled
  /// unique_ptr: shards hold a mutex and must stay address-stable.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace factorhd::service
