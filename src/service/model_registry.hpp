// ModelRegistry: named, immutable, shareable factorization models.
//
// A "model" in the serving runtime is a TaxonomyCodebooks set (the HDC
// model file persisted by taxonomy/io) together with the Encoder and
// Factorizer built over it. Construction packs every (class, level)
// codebook into word planes once; after that a Model is deeply immutable,
// so any number of engines and sessions can share one instance — including
// its packed SIMD planes — through shared_ptr<const Model> with no further
// synchronization. The registry is the process-wide name → Model map that
// load commands and serving sessions resolve against.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "hdc/item_memory.hpp"
#include "taxonomy/codebooks.hpp"

namespace factorhd::service {

/// One loaded model: codebooks + encoder + factorizer, immutable after
/// construction. Non-copyable and non-movable — the encoder and factorizer
/// hold pointers into sibling members — so it always lives behind a
/// shared_ptr (see make()).
///
/// \par Contract (build once, share everywhere)
/// Construction is where every per-codebook index is paid for exactly
/// once: the word-plane packing of each (class, level) codebook and — for
/// codebooks at/above FACTORHD_TIERED_MIN_ROWS rows (or under an explicit
/// hdc::ScanBackend::kTiered) — the tiered two-stage scan index
/// (k-means clustering + packed centroids). After make() returns, the
/// Model is deeply immutable, so any number of engines and sessions share
/// one instance, packed planes and tier index included, through
/// shared_ptr<const Model> with no further synchronization and no
/// per-request rebuild cost. Retuning a FACTORHD_TIERED_* knob therefore
/// takes effect at the next load, never mid-flight.
class Model {
 public:
  /// Builds a model from in-memory codebooks (the registry's file loader
  /// and the in-process construction path of tests/benches both end here).
  /// \param name Registry name (diagnostic; the registry enforces keys).
  /// \param books Codebook material; moved in and owned by the model.
  /// \param backend Scan backend for the factorizer's item memories.
  /// \param snapshots Optional pre-built tier indexes (a loaded sidecar,
  ///   see service/model_snapshot.hpp) offered to the factorizer so
  ///   construction can skip the k-means builds whose saved index verifies
  ///   against the codebooks; consulted only during this call. Check
  ///   factorizer().snapshots_adopted() / rejected() for the outcome.
  /// \param sharded Optional scatter-gather shard configuration threaded to
  ///   the factorizer's item memories (see hdc::ItemMemory); results stay
  ///   bit-identical to the unsharded model whenever the shards scan exact.
  /// \return The shared immutable model.
  /// \throws std::invalid_argument From the Factorizer constructor (forced
  ///   unavailable SIMD tier, unpackable codebook under kPacked).
  [[nodiscard]] static std::shared_ptr<const Model> make(
      std::string name, tax::TaxonomyCodebooks books,
      hdc::ScanBackend backend = hdc::ScanBackend::kAuto,
      const core::TierSnapshots* snapshots = nullptr,
      std::optional<hdc::kernels::ShardedConfig> sharded = std::nullopt);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const tax::TaxonomyCodebooks& books() const noexcept {
    return books_;
  }
  [[nodiscard]] const core::Encoder& encoder() const noexcept {
    return encoder_;
  }
  [[nodiscard]] const core::Factorizer& factorizer() const noexcept {
    return factorizer_;
  }
  /// \return Number of classes in the model's taxonomy (a convenience for
  ///   rendering FactorizedObject::to_object results).
  [[nodiscard]] std::size_t num_classes() const noexcept;

  /// \return The scan backend this model was requested with (what a reshard
  ///   rebuild must preserve; the factorizer reports what it resolved to).
  [[nodiscard]] hdc::ScanBackend requested_backend() const noexcept {
    return backend_;
  }
  /// \return The shard configuration this model was built with (nullopt =
  ///   unsharded / env-resolved); factorizer().shards() is the resolved
  ///   partition width.
  [[nodiscard]] const std::optional<hdc::kernels::ShardedConfig>&
  shard_config() const noexcept {
    return sharded_;
  }

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Public only for make()'s std::make_shared; use make().
  Model(std::string name, tax::TaxonomyCodebooks books,
        hdc::ScanBackend backend, const core::TierSnapshots* snapshots,
        std::optional<hdc::kernels::ShardedConfig> sharded = std::nullopt);

 private:
  std::string name_;
  tax::TaxonomyCodebooks books_;
  hdc::ScanBackend backend_;  ///< as requested at construction
  /// Shard configuration as requested at construction (reshard provenance).
  std::optional<hdc::kernels::ShardedConfig> sharded_;
  core::Encoder encoder_;      ///< views books_
  core::Factorizer factorizer_;  ///< views encoder_; packs the codebooks
};

/// Thread-safe name → Model map. Loading the same name twice replaces the
/// mapping; existing holders of the old shared_ptr keep serving the old
/// model until they drop it (zero-downtime model swap).
class ModelRegistry {
 public:
  /// Loads a codebook-set model file (taxonomy/io framing) and registers it.
  ///
  /// When a snapshot sidecar (`<path>.tix`, see service/model_snapshot.hpp)
  /// is present and loads cleanly, its tier indexes are offered to the
  /// model build — a verified match skips that codebook's k-means build. A
  /// missing, corrupt, or mismatched sidecar silently falls back to the
  /// full rebuild: sidecars are an acceleration, never a correctness
  /// input. Errors from the model file itself always propagate.
  /// \param name Registry key.
  /// \param path Model file written by tax::save_codebooks_file.
  /// \param backend Scan backend for the model's factorizer.
  /// \return The loaded model.
  /// \throws std::runtime_error On I/O failure, bad magic, or truncation.
  /// \throws std::invalid_argument On inconsistent codebook material.
  std::shared_ptr<const Model> load_file(
      const std::string& name, const std::string& path,
      hdc::ScanBackend backend = hdc::ScanBackend::kAuto);

  /// Registers a model built from in-memory codebooks.
  std::shared_ptr<const Model> add(
      const std::string& name, tax::TaxonomyCodebooks books,
      hdc::ScanBackend backend = hdc::ScanBackend::kAuto,
      std::optional<hdc::kernels::ShardedConfig> sharded = std::nullopt);

  /// Rebuilds the model registered under `name` with a `shards`-way
  /// scatter-gather partition (1 = unshard) and swaps it into the mapping —
  /// the same zero-downtime mechanism as a reload: the rebuild happens
  /// outside the lock on a copy of the codebooks, existing holders of the
  /// old shared_ptr keep serving the old partition until they drop it, and
  /// new engines pick up the resharded model. The requested scan backend is
  /// preserved. Results are unchanged by construction (sharded scans are
  /// bit-identical), so swapping mid-traffic is safe.
  /// \return The resharded model, or nullptr when `name` is not registered.
  std::shared_ptr<const Model> reshard(const std::string& name,
                                       std::size_t shards);

  /// \return The model registered under `name`, or nullptr.
  [[nodiscard]] std::shared_ptr<const Model> get(
      const std::string& name) const;

  /// \return True when a mapping was removed. Engines holding the model
  ///   keep it alive; the registry merely forgets the name.
  bool erase(const std::string& name);

  /// \return Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Model>> models_;
};

}  // namespace factorhd::service
