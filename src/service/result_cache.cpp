#include "service/result_cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "hdc/hash.hpp"

namespace factorhd::service {

std::uint64_t fingerprint_options(
    const core::FactorizeOptions& opts) noexcept {
  using hdc::hash_mix;
  std::uint64_t h = hash_mix(0x7c0f8b1d2e3a4956ULL);
  h = hash_mix(h ^ (opts.multi_object ? 1u : 0u));
  h = hash_mix(h ^ std::bit_cast<std::uint64_t>(opts.threshold));
  h = hash_mix(h ^ opts.num_objects_hint);
  h = hash_mix(h ^ opts.max_objects);
  h = hash_mix(h ^ opts.max_depth);
  h = hash_mix(h ^ opts.max_candidates_per_class);
  h = hash_mix(h ^ (opts.collect_trace ? 2u : 0u));
  h = hash_mix(h ^ (opts.exact_scan ? 4u : 0u));
  h = hash_mix(h ^ opts.selected_classes.size());
  for (const std::size_t cls : opts.selected_classes) {
    h = hash_mix(h ^ cls);
  }
  return h;
}

std::uint64_t request_key(const hdc::Hypervector& target,
                          const core::FactorizeOptions& opts) noexcept {
  return hdc::hash_hypervector(target, fingerprint_options(opts));
}

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0) return;  // disabled: zero shards, enabled() == false
  const std::size_t n = std::clamp<std::size_t>(shards, 1, capacity);
  capacity_ = capacity;
  // Distribute the budget exactly: capacity / n everywhere plus one of the
  // remainder entries in each of the first capacity % n shards. Rounding up
  // instead would let the aggregate exceed the requested capacity by up to
  // n - 1 entries once every shard fills. n <= capacity keeps every cap
  // >= 1.
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->cap = capacity / n + (i < capacity % n ? 1 : 0);
  }
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->lru.size();
  }
  return total;
}

std::optional<core::FactorizeResult> ResultCache::lookup(
    std::uint64_t key, const hdc::Hypervector& target,
    const core::FactorizeOptions& opts) {
  if (!enabled()) return std::nullopt;
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return std::nullopt;
  const Entry& e = *it->second;
  // A fingerprint match is not an identity match: verify before serving.
  if (e.target != target || !(e.opts == opts)) return std::nullopt;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return e.result;
}

void ResultCache::insert(std::uint64_t key, const hdc::Hypervector& target,
                         const core::FactorizeOptions& opts,
                         core::FactorizeResult result) {
  if (!enabled()) return;
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  if (const auto it = s.index.find(key); it != s.index.end()) {
    // Refresh (or, on a true collision, overwrite) in place.
    it->second->target = target;
    it->second->opts = opts;
    it->second->result = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= s.cap) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
  }
  s.lru.push_front(Entry{key, target, opts, std::move(result)});
  s.index.emplace(key, s.lru.begin());
}

void ResultCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->lru.clear();
    s->index.clear();
  }
}

}  // namespace factorhd::service
