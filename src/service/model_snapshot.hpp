// Model snapshot sidecars (`FTX1`): persisted tier indexes for a Model.
//
// A Model's construction cost is dominated by the tiered-index k-means
// build of its large codebooks (see hdc/kernels/tiered_snapshot.hpp). The
// sidecar persists every one of those indexes next to the model file —
// `model.fhm` gets `model.fhm.tix` — so ModelRegistry::load_file can skip
// the builds on the next load:
//
//   offset 0   u64: magic 'FTX1' (lo32) | version (hi32)
//              u64: record count
//              zero padding to 64 bytes
//   records    u64 class, u64 level (1-based), u64 byte length of the
//              embedded FTS1 snapshot; zero padding to 64 bytes; then the
//              FTS1 blob itself (intrinsically a multiple of 64 bytes)
//
// The record framing is deliberately *not* checksummed: each embedded FTS1
// blob carries its own digests, and the (class, level) keys are only
// offers — a record that lands on the wrong slot fails the plane
// verification in hdc::ItemMemory and triggers a rebuild of that slot.
// Corruption therefore costs build time, never correctness. Where the
// platform has mmap (and FACTORHD_SNAPSHOT_MMAP is not 0), all records of
// one sidecar share a single read-only file mapping.
#pragma once

#include <cstddef>
#include <string>

#include "core/factorizer.hpp"
#include "service/model_registry.hpp"

namespace factorhd::service {

/// \return The sidecar path for a model file: `<model_path>.tix`.
[[nodiscard]] std::string model_snapshot_path(const std::string& model_path);

/// Writes every tier index of `model`'s factorizer to `path` (FTX1,
/// overwrites). A model with no tier indexes produces a valid empty
/// sidecar.
/// \return Number of records written.
/// \throws std::runtime_error When the file cannot be created or written.
std::size_t save_model_snapshots(const std::string& path, const Model& model);

/// Loads every record of the sidecar at `path`.
/// \return Tier indexes keyed by (class, level), ready to offer to
///   Model::make.
/// \throws std::runtime_error On a missing/unreadable file, bad magic or
///   version, duplicate (class, level) records, framing inconsistencies,
///   or any embedded-snapshot corruption (the FTS1 guarantees).
[[nodiscard]] core::TierSnapshots load_model_snapshots(
    const std::string& path);

}  // namespace factorhd::service
