// Request tracing: per-request stage spans, a lock-free sampling ring, and
// the Chrome trace-event / slow-query exporters.
//
// The serving pipeline (cache → queue → micro-batcher → scan → merge) had
// one observable signal — the end-to-end latency histogram — which cannot
// say WHERE a p99 went. This header adds the per-request view:
//
//   RequestTrace   one request's monotonic stage timestamps (submit, cache
//                  lookup, enqueue, dequeue, scan start/end, completion)
//                  plus the scan-side facts lifted from the result (probes,
//                  rows scanned, exact rescans, shard fan-out, rounds).
//   TraceRing      a bounded lock-free ring the engine publishes sampled
//                  traces into. Writers are wait-free: a slot is claimed by
//                  CAS; losing a claim drops the record and counts it —
//                  recording never blocks, spins on, or synchronizes the
//                  serving hot path. Sampling is deterministic 1-in-N on
//                  the global request id (id % N == 0), so the SET of
//                  sampled ids is a pure function of the request count —
//                  identical across dispatcher/thread counts
//                  (tests/test_trace.cpp pins this).
//   chrome_trace_json   renders collected traces as Chrome trace-event JSON
//                  ("X" complete events, one per stage per request) loadable
//                  directly in Perfetto or chrome://tracing.
//   SlowQueryLog   rate-limited structured JSONL for requests whose e2e
//                  latency exceeds FACTORHD_SLOW_QUERY_US, carrying the full
//                  stage breakdown.
//
// Env knobs (see docs/TUNING.md): FACTORHD_TRACE_SAMPLE (1-in-N, 0 = off),
// FACTORHD_TRACE_RING (ring capacity), FACTORHD_SLOW_QUERY_US (0 = off).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace factorhd::service {

/// Observability configuration of a FactorizationEngine (the trace/slow-log
/// fields of ServiceOptions, resolvable from the env knobs).
struct TraceConfig {
  /// Deterministic 1-in-N request sampling; 0 disables tracing entirely.
  std::size_t sample_every = 0;
  /// Trace-ring slot count (sampled RequestTrace records retained).
  std::size_t ring_capacity = 4096;
  /// Slow-query log threshold in microseconds; 0 disables the log.
  std::size_t slow_query_us = 0;
};

/// TraceConfig filled from FACTORHD_TRACE_SAMPLE / FACTORHD_TRACE_RING /
/// FACTORHD_SLOW_QUERY_US. Read per call — not cached.
[[nodiscard]] TraceConfig trace_config_from_env();

/// One request's journey through the pipeline. Timestamps are steady-clock
/// nanoseconds relative to the owning TraceRing's origin; 0 marks a stage
/// the request never reached (cache hits skip the queue).
struct RequestTrace {
  std::uint64_t id = 0;          ///< global submit-order request id
  std::uint64_t submit_ns = 0;   ///< submit() entry
  std::uint64_t cache_done_ns = 0;  ///< ResultCache probe finished
  std::uint64_t enqueue_ns = 0;  ///< pushed into the request queue
  std::uint64_t dequeue_ns = 0;  ///< popped by a dispatcher (flight formed)
  std::uint64_t scan_start_ns = 0;  ///< batch handed to BatchFactorizer
  std::uint64_t scan_end_ns = 0;    ///< batch results returned
  std::uint64_t complete_ns = 0;    ///< promise fulfilled

  bool cache_hit = false;
  std::uint32_t dispatcher = 0;  ///< dispatcher that ran the flight
  std::uint32_t batch_size = 0;  ///< requests in the options-group batch
  std::uint64_t shards = 0;      ///< scan shard fan-out of the model
  std::uint64_t rows_scanned = 0;   ///< FactorizeResult::similarity_ops
  std::uint64_t probes = 0;         ///< FactorizeResult::probes
  std::uint64_t exact_rescans = 0;  ///< FactorizeResult::exact_rescans
  std::uint64_t rounds = 0;         ///< FactorizeResult::rounds
};

/// Bounded lock-free ring of sampled RequestTrace records.
///
/// Writer protocol (record): claim the next slot round-robin, CAS its state
/// to kWriting, copy the payload, release to kFull. A failed CAS (the
/// reader, or a slower writer lapped by the ring, holds the slot) drops the
/// record and counts it in dropped() — wait-free, never blocking the
/// serving path. collect() snapshots every full slot without disturbing
/// concurrent writers (a slot mid-copy is skipped, not waited on).
class TraceRing {
 public:
  /// \param capacity Slot count; clamped to >= 1.
  /// \param sample_every 1-in-N deterministic sampling; 0 disables.
  explicit TraceRing(std::size_t capacity, std::size_t sample_every);

  [[nodiscard]] bool enabled() const noexcept { return sample_every_ != 0; }
  [[nodiscard]] std::size_t sample_every() const noexcept {
    return sample_every_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// The steady-clock origin all RequestTrace timestamps are relative to.
  [[nodiscard]] std::chrono::steady_clock::time_point origin() const noexcept {
    return origin_;
  }
  /// Nanoseconds from the ring origin to `tp` (0 floor for pre-origin).
  [[nodiscard]] std::uint64_t since_origin_ns(
      std::chrono::steady_clock::time_point tp) const noexcept;

  /// Claims the next global request id (every request, sampled or not).
  [[nodiscard]] std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// True when request `id` is in the deterministic sample set.
  [[nodiscard]] bool sampled(std::uint64_t id) const noexcept {
    return sample_every_ != 0 && id % sample_every_ == 0;
  }

  /// Publishes one sampled trace (wait-free; may drop under contention).
  void record(const RequestTrace& trace) noexcept;

  /// Snapshot of every retained trace, sorted by request id ascending.
  [[nodiscard]] std::vector<RequestTrace> collect() const;

  /// \return Slots currently holding a trace (<= capacity()).
  [[nodiscard]] std::size_t occupancy() const noexcept;
  /// \return Records dropped because their slot was contended.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// \return Records successfully published since construction.
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  enum SlotState : std::uint8_t { kEmpty = 0, kWriting = 1, kFull = 2 };
  struct Slot {
    std::atomic<std::uint8_t> state{kEmpty};
    RequestTrace trace;
  };

  std::size_t capacity_;
  std::size_t sample_every_;
  std::chrono::steady_clock::time_point origin_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> recorded_{0};
};

/// Renders traces as a Chrome trace-event JSON document
/// ({"traceEvents": [...]}): per request, one "X" (complete) event per
/// pipeline stage the request went through — cache_lookup, queue_wait,
/// batch_assembly, scan, merge — plus an enclosing "request" span whose
/// args carry the scan-side facts. Timestamps are microseconds from the
/// ring origin; tid is the request id, so Perfetto lays each sampled
/// request out on its own track.
[[nodiscard]] std::string chrome_trace_json(
    std::span<const RequestTrace> traces);

/// Rate-limited structured slow-query log: one JSON object per line with
/// the full stage breakdown of a request whose end-to-end latency exceeded
/// the threshold. At most one line per min_interval_ms (default 100 ms) so
/// a latency storm cannot flood the sink; suppressed lines are counted.
class SlowQueryLog {
 public:
  /// \param threshold_us End-to-end latency bound; 0 disables the log.
  /// \param sink Destination stream (defaults to std::cerr); must outlive
  ///   this object. Writes are serialized internally.
  /// \param min_interval_ms Minimum spacing between emitted lines.
  explicit SlowQueryLog(std::size_t threshold_us, std::ostream* sink = nullptr,
                        std::size_t min_interval_ms = 100);

  [[nodiscard]] bool enabled() const noexcept { return threshold_us_ != 0; }
  [[nodiscard]] std::size_t threshold_us() const noexcept {
    return threshold_us_;
  }
  /// \return Lines actually written.
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// \return Slow requests suppressed by the rate limit.
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// Logs `trace` when its e2e latency exceeds the threshold and the rate
  /// limit admits a line; otherwise a no-op (wait-free on the common
  /// not-slow path).
  void observe(const RequestTrace& trace) noexcept;

  /// The JSONL payload observe() writes (exposed for tests/tools).
  [[nodiscard]] static std::string format(const RequestTrace& trace);

 private:
  std::size_t threshold_us_;
  std::int64_t min_interval_ns_;
  std::ostream* sink_;
  std::atomic<std::int64_t> last_emit_ns_{-1};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace factorhd::service
