#include "service/model_snapshot.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "hdc/kernels/tiered_snapshot.hpp"
#include "util/env.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FACTORHD_HAS_SNAPSHOT_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace factorhd::service {

namespace {

constexpr std::uint64_t kMagic = 0x31585446;  // 'FTX1'
constexpr std::uint64_t kVersion = 1;
constexpr std::size_t kAlign = 64;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("service::model_snapshot: " + what);
}

void insert_record(core::TierSnapshots& out, std::uint64_t cls,
                   std::uint64_t level,
                   std::shared_ptr<const hdc::kernels::TieredItemMemory> tier) {
  const auto key = std::make_pair(static_cast<std::size_t>(cls),
                                  static_cast<std::size_t>(level));
  if (!out.emplace(key, std::move(tier)).second) {
    fail("duplicate (class, level) record");
  }
}

#if FACTORHD_HAS_SNAPSHOT_MMAP

/// One read-only mapping of the whole sidecar, shared as the keepalive of
/// every record's adopted planes.
struct Mapping {
  const std::uint64_t* words = nullptr;
  std::size_t bytes = 0;
  ~Mapping() {
    if (words != nullptr) {
      ::munmap(const_cast<std::uint64_t*>(words), bytes);
    }
  }
};

core::TierSnapshots load_mapped(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open '" + path + "'");
  struct ::stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat '" + path + "'");
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kAlign || file_bytes % 8 != 0) {
    ::close(fd);
    fail("truncated sidecar '" + path + "'");
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(file_bytes),
                      PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) fail("mmap failed for '" + path + "'");
  auto mapping = std::make_shared<Mapping>();
  mapping->words = static_cast<const std::uint64_t*>(base);
  mapping->bytes = static_cast<std::size_t>(file_bytes);

  const std::uint64_t* w = mapping->words;
  const std::uint64_t total_words = file_bytes / 8;
  if ((w[0] & 0xffffffffULL) != kMagic) fail("bad magic (not an FTX1 file)");
  if ((w[0] >> 32) != kVersion) fail("unsupported sidecar version");
  const std::uint64_t count = w[1];

  core::TierSnapshots out;
  std::uint64_t pos = kAlign / 8;  // first record, in words
  for (std::uint64_t r = 0; r < count; ++r) {
    if (pos + kAlign / 8 > total_words) fail("truncated record header");
    const std::uint64_t cls = w[pos];
    const std::uint64_t level = w[pos + 1];
    const std::uint64_t blob_bytes = w[pos + 2];
    pos += kAlign / 8;
    if (blob_bytes % kAlign != 0 || blob_bytes / 8 > total_words - pos) {
      fail("record length inconsistent with file size");
    }
    std::uint64_t consumed = 0;
    auto tier = hdc::kernels::load_tiered_index(
        std::span<const std::uint64_t>(w + pos, total_words - pos), mapping,
        &consumed);
    if (consumed != blob_bytes) {
      fail("record length disagrees with its snapshot");
    }
    insert_record(out, cls, level, std::move(tier));
    pos += blob_bytes / 8;
  }
  if (pos != total_words) fail("trailing bytes after last record");
  return out;
}

#endif  // FACTORHD_HAS_SNAPSHOT_MMAP

core::TierSnapshots load_streamed(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open '" + path + "'");
  std::array<std::uint64_t, kAlign / 8> head{};
  is.read(reinterpret_cast<char*>(head.data()), kAlign);
  if (!is) fail("truncated sidecar '" + path + "'");
  if ((head[0] & 0xffffffffULL) != kMagic) fail("bad magic (not an FTX1 file)");
  if ((head[0] >> 32) != kVersion) fail("unsupported sidecar version");
  const std::uint64_t count = head[1];

  core::TierSnapshots out;
  for (std::uint64_t r = 0; r < count; ++r) {
    std::array<std::uint64_t, kAlign / 8> rec{};
    is.read(reinterpret_cast<char*>(rec.data()), kAlign);
    if (!is) fail("truncated record header");
    auto tier = hdc::kernels::load_tiered_index(is);
    if (hdc::kernels::tiered_snapshot_bytes(*tier) != rec[2]) {
      fail("record length disagrees with its snapshot");
    }
    insert_record(out, rec[0], rec[1], std::move(tier));
  }
  is.peek();
  if (!is.eof()) fail("trailing bytes after last record");
  return out;
}

}  // namespace

std::string model_snapshot_path(const std::string& model_path) {
  return model_path + ".tix";
}

std::size_t save_model_snapshots(const std::string& path,
                                 const Model& model) {
  const core::TierSnapshots tiers = model.factorizer().tier_snapshots();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) fail("cannot create '" + path + "'");
  std::array<std::uint64_t, kAlign / 8> block{};
  block[0] = kMagic | (kVersion << 32);
  block[1] = tiers.size();
  os.write(reinterpret_cast<const char*>(block.data()), kAlign);
  for (const auto& [key, tier] : tiers) {
    block.fill(0);
    block[0] = key.first;
    block[1] = key.second;
    block[2] = hdc::kernels::tiered_snapshot_bytes(*tier);
    os.write(reinterpret_cast<const char*>(block.data()), kAlign);
    hdc::kernels::save_tiered_index(os, *tier);
  }
  os.flush();
  if (!os) fail("write failed for '" + path + "'");
  return tiers.size();
}

core::TierSnapshots load_model_snapshots(const std::string& path) {
#if FACTORHD_HAS_SNAPSHOT_MMAP
  if (util::env_size_t("FACTORHD_SNAPSHOT_MMAP", 1, 0, 1) == 1) {
    return load_mapped(path);
  }
#endif
  return load_streamed(path);
}

}  // namespace factorhd::service
