// Umbrella header for the factorization serving runtime.
//
// Typical use:
//
//   service::ModelRegistry registry;
//   auto model = registry.load_file("prod", "model.fhd");
//   service::FactorizationEngine engine(model, {.max_batch = 64});
//
//   auto fut = engine.submit(target, {.multi_object = true});
//   core::FactorizeResult result = fut.get();   // == direct factorize()
//
//   std::cout << engine.metrics().to_string() << "\n";
#pragma once

#include "service/engine.hpp"          // IWYU pragma: export
#include "service/metrics.hpp"         // IWYU pragma: export
#include "service/model_registry.hpp"  // IWYU pragma: export
#include "service/result_cache.hpp"    // IWYU pragma: export
#include "service/trace.hpp"           // IWYU pragma: export
