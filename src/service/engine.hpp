// FactorizationEngine: the asynchronous serving runtime over a Model.
//
//   submit(target, opts) ──► ResultCache probe ──hit──► ready future
//        │ miss                                           ▲
//        ▼                                                │ replay
//   bounded MPMC queue  (backpressure: block or reject)   │
//        │                                                │
//        ▼                                                │
//   micro-batcher thread: flush on max_batch or max_delay_us
//        │  group by identical FactorizeOptions,
//        │  coalesce duplicate targets within the flight
//        ▼
//   core::BatchFactorizer::factorize_all  (worker pool over the shared
//        │                                 packed-SIMD scan planes)
//        ▼
//   fulfill promises + insert into ResultCache + record Metrics
//
// Correctness contract: every future receives a FactorizeResult that is
// *bit-identical* to a direct Factorizer::factorize(target, opts) call —
// regardless of how requests were batched, how many worker threads ran,
// whether the result was coalesced with a duplicate in the same flight, or
// replayed from the cache. This holds because factorization is a pure
// function of (target, opts), BatchFactorizer is deterministic across
// thread counts (its documented contract), and the cache verifies full
// key equality before serving. tests/test_service_engine.cpp asserts it
// differentially.
//
// Shutdown: stop() (and the destructor) stops accepting new work, drains
// every queued request through the normal batch path, then joins the
// batcher thread — no future is ever abandoned.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/factorizer.hpp"
#include "hdc/hypervector.hpp"
#include "service/metrics.hpp"
#include "service/model_registry.hpp"
#include "service/result_cache.hpp"
#include "service/trace.hpp"

namespace factorhd::service {

struct ServiceOptions {
  /// Flush a micro-batch once this many requests are pending.
  std::size_t max_batch = 64;
  /// ... or once the oldest pending request has waited this long (us).
  /// 0 means "dispatch immediately, batch only what is already queued".
  std::size_t max_delay_us = 200;
  /// Bounded request-queue capacity (the backpressure surface).
  std::size_t queue_capacity = 1024;
  /// When the queue is full: true → submit() throws QueueFullError;
  /// false → submit() blocks until space frees up.
  bool reject_when_full = false;
  /// Micro-batcher (queue-consumer) threads. 1 maximizes coalescing; more
  /// dispatchers overlap batch formation with computation when flights are
  /// small relative to the offered load. The queue is MPMC: any number of
  /// submitters and dispatchers. 0 = shard affinity: one dispatcher per
  /// shard of the model's widest scatter-gather partition
  /// (factorizer().shards(), >= 1), so an engine over a resharded model
  /// scales its dispatch width with the partition automatically.
  std::size_t dispatchers = 1;
  /// Worker threads of the internal BatchFactorizer; 0 = hardware.
  std::size_t batch_threads = 0;
  /// ResultCache entry budget; 0 disables result caching.
  std::size_t cache_capacity = 4096;
  /// ResultCache shard count.
  std::size_t cache_shards = 8;
  /// Deterministic 1-in-N request tracing (0 = tracing off). Sampled
  /// requests get a full RequestTrace in the trace ring; the sampled id SET
  /// is a pure function of the request count, identical across dispatcher
  /// counts. Env default: FACTORHD_TRACE_SAMPLE.
  std::size_t trace_sample = 0;
  /// Trace-ring capacity (sampled traces retained). Env: FACTORHD_TRACE_RING.
  std::size_t trace_ring = 4096;
  /// Slow-query log threshold in us; 0 disables. When on, every computed
  /// request is timed stage-by-stage (even unsampled ones) so slow outliers
  /// always carry their breakdown. Env: FACTORHD_SLOW_QUERY_US.
  std::size_t slow_query_us = 0;
};

/// Thrown by submit() under reject_when_full backpressure.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError()
      : std::runtime_error(
            "FactorizationEngine: request queue full (backpressure)") {}
};

/// Thrown by submit() once stop() has begun: the engine's lifecycle state —
/// not the caller's arguments — rejected the request, so it is a runtime
/// error like QueueFullError, and callers can catch the two uniformly as
/// "not accepted right now" without also swallowing genuine usage bugs.
class EngineStoppedError : public std::runtime_error {
 public:
  explicit EngineStoppedError(const char* detail)
      : std::runtime_error(std::string("FactorizationEngine::submit: ") +
                           detail) {}
};

/// Asynchronous factorization server over one immutable Model.
///
/// \par Contract (bit-identical serving)
/// Every future returned by submit() carries a core::FactorizeResult that
/// is bit-identical (doubles included) to a direct
/// `Factorizer::factorize(target, opts)` call on the same Model —
/// regardless of batch composition, dispatcher/worker thread counts,
/// duplicate coalescing, or cache state. The guarantee composes from
/// three facts: factorization is a pure function of `(target, opts)`
/// (tiered scan approximation included — the index is immutable and its
/// scans deterministic), BatchFactorizer is deterministic across thread
/// counts, and the ResultCache verifies full key equality before serving
/// (collision ⇒ miss; see service/result_cache.hpp). Asserted
/// differentially by tests/test_service_engine.cpp and under
/// ThreadSanitizer by tests/test_service_soak.cpp.
class FactorizationEngine {
 public:
  /// \param model Model to serve; shared (and kept alive) by the engine.
  /// \param opts Batching, backpressure, and cache configuration.
  ///   `dispatchers == 0` resolves to the model's shard count (>= 1); the
  ///   resolved value is visible through options().
  /// \throws std::invalid_argument When `model` is null or max_batch /
  ///   queue_capacity is 0.
  explicit FactorizationEngine(std::shared_ptr<const Model> model,
                               ServiceOptions opts = {});

  /// Stops and drains (see stop()).
  ~FactorizationEngine();

  FactorizationEngine(const FactorizationEngine&) = delete;
  FactorizationEngine& operator=(const FactorizationEngine&) = delete;

  /// Submits one factorization request.
  /// \param target Encoded target HV of the model's dimension.
  /// \param opts Per-request factorization options; requests batch together
  ///   only with identical options.
  /// \return Future for the result (may already be ready on a cache hit).
  /// \throws std::invalid_argument On a dimension mismatch.
  /// \throws EngineStoppedError After stop() has begun — including when
  ///   stop() lands while the caller is blocked on backpressure (the
  ///   request was never enqueued and will never complete).
  /// \throws QueueFullError When the queue is full and reject_when_full.
  [[nodiscard]] std::future<core::FactorizeResult> submit(
      hdc::Hypervector target, core::FactorizeOptions opts = {});

  /// Stops accepting new submissions, drains every queued request through
  /// the batch path, and joins the batcher thread. Idempotent; called by
  /// the destructor. After stop(), every future obtained from submit() is
  /// ready.
  void stop();

  /// \return Counter snapshot, safe to call at any time while serving.
  ///   Includes the per-stage latency digests and (for sharded models) the
  ///   per-shard rows-scanned counters.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// One dispatcher's view for the `stats` per-dispatcher breakdown.
  struct DispatcherStats {
    MetricsSnapshot metrics;   ///< this dispatcher's compute-side counters
    std::size_t inflight = 0;  ///< requests popped but not yet fulfilled
  };
  /// \return Per-dispatcher compute-side snapshots (batches dispatched, max
  ///   batch high-water, in-flight depth), index-aligned with the pool.
  [[nodiscard]] std::vector<DispatcherStats> dispatcher_stats() const;

  /// Zeroes every counter and latency histogram (submit-side and all
  /// dispatcher sets) for a fresh `stats reset` epoch. The engine keeps
  /// serving; requests in flight attribute their completion to the new
  /// epoch. The trace ring and request-id sequence are NOT reset —
  /// sampled-id determinism spans epochs.
  void reset_metrics() noexcept;

  /// The engine's trace ring (occupancy / drop counters, config).
  [[nodiscard]] const TraceRing& trace_ring() const noexcept {
    return trace_ring_;
  }
  /// Snapshot of the retained sampled traces, request-id ascending. Feed to
  /// chrome_trace_json() for a Perfetto-loadable dump.
  [[nodiscard]] std::vector<RequestTrace> trace_samples() const {
    return trace_ring_.collect();
  }
  /// The engine's slow-query log (emitted / suppressed counters).
  [[nodiscard]] const SlowQueryLog& slow_query_log() const noexcept {
    return slow_log_;
  }

  [[nodiscard]] const Model& model() const noexcept { return *model_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return opts_;
  }
  /// \return Pending (queued, not yet dispatched) request count.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Request {
    hdc::Hypervector target;
    core::FactorizeOptions opts;
    std::uint64_t key = 0;  ///< request_key(target, opts)
    std::promise<core::FactorizeResult> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point cache_done;  ///< cache probe done
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point dequeued;
    std::uint64_t trace_id = 0;  ///< global submit-order id (when observing)
    bool traced = false;         ///< in the deterministic sample set
  };

  /// One dispatcher's mutable state (unique_ptr-held: address-stable
  /// atomics). Compute-side metrics are uncontended on the dispatch path;
  /// inflight is the popped-but-not-fulfilled gauge for `stats`.
  struct DispatcherState {
    Metrics metrics;
    std::atomic<std::size_t> inflight{0};
  };

  void batcher_loop(DispatcherState& state, std::uint32_t index);
  /// Collects one flight from the queue (respecting max_batch/max_delay_us).
  /// Returns an empty vector when stopping and the queue is drained.
  [[nodiscard]] std::vector<Request> next_flight();
  /// Factorizes one flight: groups by options, coalesces duplicates,
  /// dispatches BatchFactorizer, fulfills promises, feeds cache + the
  /// calling dispatcher's metrics set + per-stage latencies + traces.
  void run_flight(std::vector<Request> flight, DispatcherState& state,
                  std::uint32_t index);

  std::shared_ptr<const Model> model_;
  ServiceOptions opts_;
  core::BatchFactorizer batcher_;  ///< views model_->factorizer()
  ResultCache cache_;
  /// Submit-side counters (submitted / rejected / cache hit+miss, the
  /// cache-lookup stage, and the cache-hit completions recorded on the
  /// submit thread). Compute-side events go to the owning dispatcher's set
  /// in dispatchers_; metrics() merges dispatcher sets first and this set
  /// last, so each event is aggregated exactly once and
  /// completed <= submitted holds in live snapshots.
  Metrics metrics_;
  /// Per-dispatcher state (unique_ptr: holds atomics, address-stable).
  std::vector<std::unique_ptr<DispatcherState>> dispatchers_;
  /// Sampled-trace ring; also owns the global request-id sequence and the
  /// steady-clock origin all trace timestamps are relative to.
  TraceRing trace_ring_;
  /// Rate-limited slow-query JSONL (stderr by default).
  SlowQueryLog slow_log_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;  ///< signalled on enqueue and stop
  std::condition_variable queue_space_;  ///< signalled on dequeue
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::mutex join_mu_;  ///< serializes concurrent stop() joins
  /// Dispatcher pool; last member: joins before any state tears down.
  std::vector<std::thread> batcher_threads_;
};

}  // namespace factorhd::service
