// FactorizationEngine: the asynchronous serving runtime over a Model.
//
//   submit(target, opts) ──► ResultCache probe ──hit──► ready future
//        │ miss                                           ▲
//        ▼                                                │ replay
//   bounded MPMC queue  (backpressure: block or reject)   │
//        │                                                │
//        ▼                                                │
//   micro-batcher thread: flush on max_batch or max_delay_us
//        │  group by identical FactorizeOptions,
//        │  coalesce duplicate targets within the flight
//        ▼
//   core::BatchFactorizer::factorize_all  (worker pool over the shared
//        │                                 packed-SIMD scan planes)
//        ▼
//   fulfill promises + insert into ResultCache + record Metrics
//
// Correctness contract: every future receives a FactorizeResult that is
// *bit-identical* to a direct Factorizer::factorize(target, opts) call —
// regardless of how requests were batched, how many worker threads ran,
// whether the result was coalesced with a duplicate in the same flight, or
// replayed from the cache. This holds because factorization is a pure
// function of (target, opts), BatchFactorizer is deterministic across
// thread counts (its documented contract), and the cache verifies full
// key equality before serving. tests/test_service_engine.cpp asserts it
// differentially.
//
// Shutdown: stop() (and the destructor) stops accepting new work, drains
// every queued request through the normal batch path, then joins the
// batcher thread — no future is ever abandoned.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/factorizer.hpp"
#include "hdc/hypervector.hpp"
#include "service/metrics.hpp"
#include "service/model_registry.hpp"
#include "service/result_cache.hpp"

namespace factorhd::service {

struct ServiceOptions {
  /// Flush a micro-batch once this many requests are pending.
  std::size_t max_batch = 64;
  /// ... or once the oldest pending request has waited this long (us).
  /// 0 means "dispatch immediately, batch only what is already queued".
  std::size_t max_delay_us = 200;
  /// Bounded request-queue capacity (the backpressure surface).
  std::size_t queue_capacity = 1024;
  /// When the queue is full: true → submit() throws QueueFullError;
  /// false → submit() blocks until space frees up.
  bool reject_when_full = false;
  /// Micro-batcher (queue-consumer) threads. 1 maximizes coalescing; more
  /// dispatchers overlap batch formation with computation when flights are
  /// small relative to the offered load. The queue is MPMC: any number of
  /// submitters and dispatchers. 0 = shard affinity: one dispatcher per
  /// shard of the model's widest scatter-gather partition
  /// (factorizer().shards(), >= 1), so an engine over a resharded model
  /// scales its dispatch width with the partition automatically.
  std::size_t dispatchers = 1;
  /// Worker threads of the internal BatchFactorizer; 0 = hardware.
  std::size_t batch_threads = 0;
  /// ResultCache entry budget; 0 disables result caching.
  std::size_t cache_capacity = 4096;
  /// ResultCache shard count.
  std::size_t cache_shards = 8;
};

/// Thrown by submit() under reject_when_full backpressure.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError()
      : std::runtime_error(
            "FactorizationEngine: request queue full (backpressure)") {}
};

/// Thrown by submit() once stop() has begun: the engine's lifecycle state —
/// not the caller's arguments — rejected the request, so it is a runtime
/// error like QueueFullError, and callers can catch the two uniformly as
/// "not accepted right now" without also swallowing genuine usage bugs.
class EngineStoppedError : public std::runtime_error {
 public:
  explicit EngineStoppedError(const char* detail)
      : std::runtime_error(std::string("FactorizationEngine::submit: ") +
                           detail) {}
};

/// Asynchronous factorization server over one immutable Model.
///
/// \par Contract (bit-identical serving)
/// Every future returned by submit() carries a core::FactorizeResult that
/// is bit-identical (doubles included) to a direct
/// `Factorizer::factorize(target, opts)` call on the same Model —
/// regardless of batch composition, dispatcher/worker thread counts,
/// duplicate coalescing, or cache state. The guarantee composes from
/// three facts: factorization is a pure function of `(target, opts)`
/// (tiered scan approximation included — the index is immutable and its
/// scans deterministic), BatchFactorizer is deterministic across thread
/// counts, and the ResultCache verifies full key equality before serving
/// (collision ⇒ miss; see service/result_cache.hpp). Asserted
/// differentially by tests/test_service_engine.cpp and under
/// ThreadSanitizer by tests/test_service_soak.cpp.
class FactorizationEngine {
 public:
  /// \param model Model to serve; shared (and kept alive) by the engine.
  /// \param opts Batching, backpressure, and cache configuration.
  ///   `dispatchers == 0` resolves to the model's shard count (>= 1); the
  ///   resolved value is visible through options().
  /// \throws std::invalid_argument When `model` is null or max_batch /
  ///   queue_capacity is 0.
  explicit FactorizationEngine(std::shared_ptr<const Model> model,
                               ServiceOptions opts = {});

  /// Stops and drains (see stop()).
  ~FactorizationEngine();

  FactorizationEngine(const FactorizationEngine&) = delete;
  FactorizationEngine& operator=(const FactorizationEngine&) = delete;

  /// Submits one factorization request.
  /// \param target Encoded target HV of the model's dimension.
  /// \param opts Per-request factorization options; requests batch together
  ///   only with identical options.
  /// \return Future for the result (may already be ready on a cache hit).
  /// \throws std::invalid_argument On a dimension mismatch.
  /// \throws EngineStoppedError After stop() has begun — including when
  ///   stop() lands while the caller is blocked on backpressure (the
  ///   request was never enqueued and will never complete).
  /// \throws QueueFullError When the queue is full and reject_when_full.
  [[nodiscard]] std::future<core::FactorizeResult> submit(
      hdc::Hypervector target, core::FactorizeOptions opts = {});

  /// Stops accepting new submissions, drains every queued request through
  /// the batch path, and joins the batcher thread. Idempotent; called by
  /// the destructor. After stop(), every future obtained from submit() is
  /// ready.
  void stop();

  /// \return Counter snapshot, safe to call at any time while serving.
  [[nodiscard]] MetricsSnapshot metrics() const;

  [[nodiscard]] const Model& model() const noexcept { return *model_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return opts_;
  }
  /// \return Pending (queued, not yet dispatched) request count.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Request {
    hdc::Hypervector target;
    core::FactorizeOptions opts;
    std::uint64_t key = 0;  ///< request_key(target, opts)
    std::promise<core::FactorizeResult> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void batcher_loop(Metrics& metrics);
  /// Collects one flight from the queue (respecting max_batch/max_delay_us).
  /// Returns an empty vector when stopping and the queue is drained.
  [[nodiscard]] std::vector<Request> next_flight();
  /// Factorizes one flight: groups by options, coalesces duplicates,
  /// dispatches BatchFactorizer, fulfills promises, feeds cache + the
  /// calling dispatcher's metrics set.
  void run_flight(std::vector<Request> flight, Metrics& metrics);

  std::shared_ptr<const Model> model_;
  ServiceOptions opts_;
  core::BatchFactorizer batcher_;  ///< views model_->factorizer()
  ResultCache cache_;
  /// Submit-side counters (submitted / rejected / cache hit+miss and the
  /// cache-hit completions recorded on the submit thread). Compute-side
  /// events go to the owning dispatcher's set in dispatcher_metrics_;
  /// metrics() merges dispatcher sets first and this set last, so each
  /// event is aggregated exactly once and completed <= submitted holds in
  /// live snapshots.
  Metrics metrics_;
  /// One counter set per dispatcher (unique_ptr: Metrics holds atomics and
  /// must stay address-stable). Uncontended writes on the dispatch path.
  std::vector<std::unique_ptr<Metrics>> dispatcher_metrics_;

  mutable std::mutex mu_;
  std::condition_variable queue_ready_;  ///< signalled on enqueue and stop
  std::condition_variable queue_space_;  ///< signalled on dequeue
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::mutex join_mu_;  ///< serializes concurrent stop() joins
  /// Dispatcher pool; last member: joins before any state tears down.
  std::vector<std::thread> batcher_threads_;
};

}  // namespace factorhd::service
