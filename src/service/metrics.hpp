// Serving-runtime metrics: lock-free counters plus a latency histogram,
// snapshotable at any time while the engine is serving.
//
// Everything is a relaxed atomic — metrics never synchronize the hot path,
// they only observe it. Latency percentiles come from a power-of-two bucket
// histogram (64 buckets over nanoseconds); a snapshot's p50/p99 report the
// geometric midpoint of the quantile's bucket (2^(i+0.5) ns for bucket i),
// so the reported value is within a factor of sqrt(2) (~1.41x) of the true
// bucketed quantile in either direction — the bucket upper bound would
// instead overstate a single-latency stream by up to 2x. That fidelity is
// right for a serving dashboard and keeps recording allocation- and
// lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace factorhd::service {

/// One consistent-enough view of the engine's counters (individual counters
/// are read relaxed; a snapshot taken while serving may be mid-request, but
/// after a drain it is exact).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;      ///< accepted submit() calls
  std::uint64_t rejected = 0;       ///< submits refused by backpressure
  std::uint64_t completed = 0;      ///< futures fulfilled (incl. cache hits)
  std::uint64_t cache_hits = 0;     ///< served straight from the ResultCache
  std::uint64_t cache_misses = 0;   ///< enqueued for computation
  std::uint64_t batches = 0;        ///< micro-batches dispatched
  std::uint64_t batched_requests = 0;  ///< requests carried by those batches
  std::uint64_t coalesced = 0;      ///< duplicate requests deduped in-batch
  std::size_t queue_depth = 0;      ///< pending requests at snapshot time
  std::size_t max_batch_observed = 0;
  double mean_batch = 0.0;          ///< batched_requests / batches
  /// submit→completion latency quantiles, bucket-quantized to the geometric
  /// midpoint of the power-of-2 bucket (within sqrt(2) of the true bucketed
  /// quantile).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;

  /// Multi-line human-readable rendering (the `stats` command of
  /// factorhd_serve and the bench reports).
  [[nodiscard]] std::string to_string() const;
};

/// The engine's mutable counter set. All methods are thread-safe and
/// wait-free; const methods only read.
class Metrics {
 public:
  void on_submitted() noexcept { inc(submitted_); }
  void on_rejected() noexcept { inc(rejected_); }
  void on_cache_hit() noexcept { inc(cache_hits_); }
  void on_cache_miss() noexcept { inc(cache_misses_); }
  void on_coalesced() noexcept { inc(coalesced_); }

  /// Records one dispatched micro-batch of `requests` requests.
  void on_batch(std::size_t requests) noexcept;

  /// Records one fulfilled future and its submit→completion latency.
  void on_completed(double latency_us) noexcept;

  /// \param queue_depth The engine's current pending-queue length (the one
  ///   piece of state the metrics do not own).
  [[nodiscard]] MetricsSnapshot snapshot(std::size_t queue_depth) const;

  /// Adds `other`'s counters (and latency histogram, bucket-wise; max for
  /// the batch high-water mark) into this set — how the engine aggregates
  /// its per-dispatcher metrics into one snapshot without double-counting:
  /// each event is recorded in exactly one Metrics instance and merged
  /// exactly once per aggregate. Reads `other` in the same downstream-first
  /// acquire order as snapshot(), so a live merge keeps the
  /// completed <= submitted inequalities when the submit-side set is merged
  /// last. Not atomic with respect to writers of *this* — merge into a
  /// local Metrics, as the engine does.
  void merge(const Metrics& other) noexcept;

 private:
  // Release increments pair with snapshot()'s acquire loads: a snapshot
  // that sees a request's downstream counter (hit/miss/completion) is
  // guaranteed to also see its earlier `submitted` increment.
  static void inc(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_release);
  }
  /// Histogram bucket for a latency: floor(log2(ns)), saturated.
  static std::size_t bucket_of(double latency_us) noexcept;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  /// latency_ns histogram: bucket i counts latencies in [2^i, 2^(i+1)) ns.
  std::array<std::atomic<std::uint64_t>, 64> latency_buckets_{};
};

}  // namespace factorhd::service
