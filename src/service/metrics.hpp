// Serving-runtime metrics: lock-free counters plus latency histograms —
// end-to-end and per pipeline stage — snapshotable at any time while the
// engine is serving.
//
// Everything is a relaxed atomic — metrics never synchronize the hot path,
// they only observe it. Latency percentiles come from power-of-two bucket
// histograms (64 buckets over nanoseconds); a snapshot's p50/p99/p99.9
// report the geometric midpoint of the quantile's bucket (2^(i+0.5) ns for
// bucket i), so the reported value is within a factor of sqrt(2) (~1.41x)
// of the true bucketed quantile in either direction — the bucket upper
// bound would instead overstate a single-latency stream by up to 2x. That
// fidelity is right for a serving dashboard and keeps recording allocation-
// and lock-free.
//
// Exports: MetricsSnapshot::to_string() renders the human `stats` view;
// to_prometheus() renders the Prometheus text exposition format
// (counters as factorhd_*_total, stage latencies as summaries with
// quantile labels, per-shard scan counts with shard labels) — linted by
// scripts/check_obs.py.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace factorhd::service {

/// Pipeline stages request latency is attributed to. kCacheLookup is
/// recorded for every request (hit or miss); the queue-to-merge stages
/// only for computed (cache-miss) requests. The kNet* stages are recorded
/// by the network front end (net::NetServer keeps its own Metrics set);
/// engine-owned Metrics leave them empty.
enum class Stage : std::size_t {
  kCacheLookup = 0,  ///< submit() → ResultCache probe done
  kQueueWait,        ///< enqueue → popped by a dispatcher
  kBatchAssembly,    ///< popped → batch handed to BatchFactorizer
  kScan,             ///< BatchFactorizer::factorize_all wall time
  kMerge,            ///< results back → promise fulfilled (+ cache insert)
  kNetRead,          ///< socket bytes → frame parsed + request decoded
  kAdmission,        ///< frame decoded → admitted + handed to the engine
  kNetWrite,         ///< engine future ready → response bytes buffered
};
inline constexpr std::size_t kNumStages = 8;

/// Stable snake_case stage name (the Prometheus label / trace span name).
[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// One consistent-enough view of the engine's counters (individual counters
/// are read relaxed; a snapshot taken while serving may be mid-request, but
/// after a drain it is exact).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;      ///< accepted submit() calls
  std::uint64_t rejected = 0;       ///< submits refused by backpressure
  std::uint64_t completed = 0;      ///< futures fulfilled (incl. cache hits)
  std::uint64_t cache_hits = 0;     ///< served straight from the ResultCache
  std::uint64_t cache_misses = 0;   ///< enqueued for computation
  std::uint64_t batches = 0;        ///< micro-batches dispatched
  std::uint64_t batched_requests = 0;  ///< requests carried by those batches
  std::uint64_t coalesced = 0;      ///< duplicate requests deduped in-batch
  std::size_t queue_depth = 0;      ///< pending requests at snapshot time
  std::size_t max_batch_observed = 0;
  double mean_batch = 0.0;          ///< batched_requests / batches
  /// submit→completion latency quantiles, bucket-quantized to the geometric
  /// midpoint of the power-of-2 bucket (within sqrt(2) of the true bucketed
  /// quantile).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
  /// Approximate latency sum (bucket geometric midpoints x counts) — the
  /// Prometheus summary _sum line; same sqrt(2) fidelity as the quantiles.
  double latency_sum_us = 0.0;

  /// One stage's latency digest (same bucket quantization as above).
  struct StageLatency {
    std::uint64_t count = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double sum_us = 0.0;  ///< approximate (bucket midpoints x counts)
  };
  /// Per-stage digests, indexed by Stage.
  std::array<StageLatency, kNumStages> stages{};

  /// Cumulative similarity measurements charged to each scan shard (empty
  /// when the served model is unsharded) — hot shards stand out here.
  std::vector<std::uint64_t> shard_rows_scanned;

  /// Multi-line human-readable rendering (the `stats` command of
  /// factorhd_serve and the bench reports).
  [[nodiscard]] std::string to_string() const;

  /// Prometheus text exposition format: # HELP/# TYPE lines, counters as
  /// factorhd_*_total, gauges for queue depth, one summary family
  /// factorhd_stage_latency_us{stage=...} plus the end-to-end
  /// factorhd_request_latency_us summary, and
  /// factorhd_shard_rows_scanned_total{shard="N"} per shard.
  [[nodiscard]] std::string to_prometheus() const;
};

/// The engine's mutable counter set. All methods are thread-safe and
/// wait-free; const methods only read.
class Metrics {
 public:
  void on_submitted() noexcept { inc(submitted_); }
  void on_rejected() noexcept { inc(rejected_); }
  void on_cache_hit() noexcept { inc(cache_hits_); }
  void on_cache_miss() noexcept { inc(cache_misses_); }
  void on_coalesced() noexcept { inc(coalesced_); }

  /// Records one dispatched micro-batch of `requests` requests.
  void on_batch(std::size_t requests) noexcept;

  /// Records one fulfilled future and its submit→completion latency.
  void on_completed(double latency_us) noexcept;

  /// Records one request's dwell time in pipeline stage `stage`.
  void on_stage(Stage stage, double latency_us) noexcept;

  /// \param queue_depth The engine's current pending-queue length (the one
  ///   piece of state the metrics do not own).
  [[nodiscard]] MetricsSnapshot snapshot(std::size_t queue_depth) const;

  /// Convenience: snapshot(queue_depth).to_prometheus().
  [[nodiscard]] std::string to_prometheus(std::size_t queue_depth) const {
    return snapshot(queue_depth).to_prometheus();
  }

  /// Adds `other`'s counters (and latency histograms, bucket-wise; max for
  /// the batch high-water mark) into this set — how the engine aggregates
  /// its per-dispatcher metrics into one snapshot without double-counting:
  /// each event is recorded in exactly one Metrics instance and merged
  /// exactly once per aggregate. Reads `other` in the same downstream-first
  /// acquire order as snapshot(), so a live merge keeps the
  /// completed <= submitted inequalities when the submit-side set is merged
  /// last. Not atomic with respect to writers of *this* — merge into a
  /// local Metrics, as the engine does.
  void merge(const Metrics& other) noexcept;

  /// Zeroes every counter and histogram — the `stats reset` fresh epoch.
  /// Counters are cleared downstream-first (completed before submitted),
  /// so a concurrent snapshot keeps completed <= submitted; requests in
  /// flight across the reset attribute their completion to the new epoch
  /// (their submit was cleared), an accepted one-snapshot skew.
  void reset() noexcept;

  /// Histogram bucket for a latency: floor(log2(ns)), saturated into
  /// [0, 63]. Bucket i covers [2^i, 2^(i+1)) ns; sub-nanosecond (and NaN)
  /// latencies land in bucket 0. Exposed for the histogram edge tests.
  [[nodiscard]] static std::size_t bucket_of(double latency_us) noexcept;

 private:
  using Histogram = std::array<std::atomic<std::uint64_t>, 64>;

  // Release increments pair with snapshot()'s acquire loads: a snapshot
  // that sees a request's downstream counter (hit/miss/completion) is
  // guaranteed to also see its earlier `submitted` increment.
  static void inc(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_release);
  }

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  /// latency_ns histogram: bucket i counts latencies in [2^i, 2^(i+1)) ns.
  Histogram latency_buckets_{};
  /// Per-stage latency histograms, same bucketing, indexed by Stage.
  std::array<Histogram, kNumStages> stage_buckets_{};
};

}  // namespace factorhd::service
