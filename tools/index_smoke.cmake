# CTest smoke driver for the offline-index pipeline: a model file round
# trips through `factorhd_serve model save` -> `factorhd index build` ->
# `factorhd index info` -> `factorhd_serve model load`, and the final load
# must adopt every snapshot the build produced. Run as
#   cmake -DCLI_BIN=<path> -DSERVE_BIN=<path> -P index_smoke.cmake
# FACTORHD_TIERED_MIN_ROWS=64 forces tiering of the small smoke codebooks
# (256 rows) so the pipeline is exercised without a large build; nprobe ==
# clusters makes the tiered scans exact-coverage, so the roundtrip checks
# are deterministic rather than at the mercy of coarse probing at D=2048.
set(workdir ${CMAKE_CURRENT_BINARY_DIR}/index_smoke)
file(REMOVE_RECURSE ${workdir})
file(MAKE_DIRECTORY ${workdir})
set(model ${workdir}/model.fhm)
set(sidecar ${model}.tix)
set(ENV{FACTORHD_TIERED_MIN_ROWS} 64)
set(ENV{FACTORHD_TIERED_CLUSTERS} 16)
set(ENV{FACTORHD_TIERED_NPROBE} 16)

# 1. Generate and save a model (no sidecar yet: the generating session has
#    min_rows forced too, so `model save` writes one — delete it to prove
#    `index build` recreates it from the model file alone).
set(tmp ${workdir}/gen_input.txt)
file(WRITE ${tmp} "model gen smoke 2 256 2048 7
model save smoke ${model}
quit
")
execute_process(COMMAND ${SERVE_BIN} INPUT_FILE ${tmp}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok saved smoke")
  message(FATAL_ERROR "model save failed (rc=${rc}):\n${out}\n${err}")
endif()
file(REMOVE ${sidecar})

# 2. Build the sidecar offline.
execute_process(
  COMMAND ${CLI_BIN} index build --model ${model} --clusters 16 --nprobe 16
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR NOT out MATCHES "built 2 tier indexes")
  message(FATAL_ERROR "index build failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS ${sidecar})
  message(FATAL_ERROR "index build did not write ${sidecar}")
endif()

# 3. Validate the sidecar (digests verified in full).
execute_process(COMMAND ${CLI_BIN} index info --snapshot ${sidecar}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok: FTX1 sidecar, 2 records")
  message(FATAL_ERROR "index info failed (rc=${rc}):\n${out}\n${err}")
endif()

# 4. Load through the serving registry: both snapshots must be adopted
#    (plane verification passed, k-means builds skipped), and the served
#    roundtrip must still be exact.
set(tmp ${workdir}/load_input.txt)
file(WRITE ${tmp} "model load smoke ${model}
serve smoke
roundtrip 1
quit
")
execute_process(COMMAND ${SERVE_BIN} INPUT_FILE ${tmp}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve load session failed (rc=${rc}):\n${out}\n${err}")
endif()
foreach(needle "snapshots 2 adopted" "ok roundtrip exact")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "expected '${needle}' in serve output:\n${out}")
  endif()
endforeach()

# 5. A corrupted sidecar must degrade to a rebuild, never break the load:
#    overwrite it with garbage that still leads with the right magic.
file(WRITE ${sidecar} "FTX1 corrupt")
execute_process(COMMAND ${SERVE_BIN} INPUT_FILE ${tmp}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corrupt-sidecar load failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "ok loaded smoke")
  message(FATAL_ERROR "corrupt sidecar broke the model load:\n${out}")
endif()
if(out MATCHES "snapshots [0-9]+ adopted")
  message(FATAL_ERROR "corrupt sidecar must not be adopted:\n${out}")
endif()
if(NOT out MATCHES "ok roundtrip exact")
  message(FATAL_ERROR "rebuild after corrupt sidecar not exact:\n${out}")
endif()
file(REMOVE_RECURSE ${workdir})
