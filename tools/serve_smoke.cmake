# CTest smoke driver for factorhd_serve: pipes a scripted session through
# the line protocol and asserts the responses. Run as
#   cmake -DSERVE_BIN=<path> -P serve_smoke.cmake
# D=2048 keeps the 2-object roundtrip reliably exact (the D the CLI demo
# uses); smaller dims fail statistically, not through any serving bug.
set(script "model gen demo 3 8,4 2048 7
serve demo 8 100
listen 0
roundtrip 2
burst 12 1
listen stop
stats
stats prom
trace dump
stats reset
stats
quit
")

# execute_process has no INPUT_STRING; write the script to a temp file.
set(tmp ${CMAKE_CURRENT_BINARY_DIR}/serve_smoke_input.txt)
file(WRITE ${tmp} "${script}")
execute_process(
  COMMAND ${SERVE_BIN}
  INPUT_FILE ${tmp}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
file(REMOVE ${tmp})

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "factorhd_serve exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
foreach(needle
    "ok model demo"
    "ok serving demo"
    "ok listening on 127\\.0\\.0\\.1:"
    "ok listen stopped"
    "ok roundtrip exact"
    "ok burst 12 requests, 12 exact"
    "ok stats"
    "stage scan:"
    "dispatcher\\[0\\]:"
    "factorhd_stage_latency_us"
    "ok stats prom"
    "ok trace dump"
    "ok stats reset"
    "ok bye")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "expected '${needle}' in serve output:\n${out}")
  endif()
endforeach()
if(out MATCHES "err:")
  message(FATAL_ERROR "serve session reported an error:\n${out}")
endif()
