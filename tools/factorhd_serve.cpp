// factorhd_serve — line-protocol serving front end over the
// service::FactorizationEngine (src/service/).
//
// Reads one command per line from stdin, writes payload lines followed by a
// terminating "ok ..." or "err: ..." line to stdout — a protocol trivially
// driven by a human, a pipe, or a socket wrapper (e.g. `socat
// TCP-LISTEN:9999,fork EXEC:factorhd_serve`). Commands:
//
//   model gen NAME F M1[,M2,...] D [SEED]   generate an in-memory model
//   model load NAME PATH                     load a model file (taxonomy/io)
//   model save NAME PATH                     persist a model to a file
//   model list                               registered model names
//   serve NAME [MAX_BATCH [MAX_DELAY_US]]    start serving a model
//   reshard NAME SHARDS                      rebuild NAME with a SHARDS-way
//                                            scatter-gather partition (1 =
//                                            unshard) and hot-swap it —
//                                            zero downtime, results are
//                                            bit-identical at any count
//   factorize [multi] C0,C1,...,C(D-1)       submit a raw target vector
//   roundtrip [N]                            random N-object scene: encode,
//                                            submit, verify (demo + smoke)
//   burst COUNT [N]                          COUNT concurrent roundtrips —
//                                            exercises micro-batching
//   listen [PORT]                            start the binary TCP front end
//                                            (src/net/) on 127.0.0.1; PORT 0 or
//                                            absent = FACTORHD_NET_PORT (0 =
//                                            ephemeral, printed). The stdin
//                                            protocol keeps running alongside.
//   listen stop                              drain and stop the TCP front end
//   stats                                    engine metrics snapshot: counters,
//                                            per-stage p50/p99/p99.9, per-shard
//                                            scan counts, per-dispatcher lines
//                                            (+ net/admission lines while
//                                            listening)
//   stats prom [FILE]                        Prometheus text exposition (to
//                                            FILE when given, else inline)
//   stats reset                              zero the counters/histograms for
//                                            a fresh epoch (engine keeps
//                                            serving; trace ring untouched)
//   trace dump [FILE]                        sampled request traces as Chrome
//                                            trace-event JSON (Perfetto /
//                                            chrome://tracing loadable)
//   quit                                     drain and exit (EOF works too)
//
// Service defaults come from the FACTORHD_SERVE_* env knobs (see
// util::env_knobs); observability from FACTORHD_TRACE_SAMPLE /
// FACTORHD_TRACE_RING / FACTORHD_SLOW_QUERY_US; `serve` arguments override
// the batching knobs. Exit status 0 on clean shutdown, 1 on a malformed
// invocation.
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/factorhd.hpp"
#include "net/net.hpp"
#include "service/model_snapshot.hpp"
#include "service/service.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace factorhd;

struct ServerState {
  util::Xoshiro256 rng{util::experiment_seed()};
  service::ModelRegistry registry;
  std::shared_ptr<const service::Model> model;
  std::unique_ptr<service::FactorizationEngine> engine;
  /// TCP front end over `engine` (declared after it: destroyed — drained —
  /// first, so the engine it references is still alive).
  std::unique_ptr<net::NetServer> net_server;
};

/// Stops and discards the TCP listener if one is running. The engine-swap
/// commands call this first — the listener holds a reference to the engine
/// being torn down. \return True when a listener was actually stopped.
bool stop_listener(ServerState& st) {
  if (!st.net_server) return false;
  st.net_server->stop();
  st.net_server.reset();
  return true;
}

service::ServiceOptions env_service_options() {
  service::ServiceOptions opts;
  opts.max_batch = util::env_size_t("FACTORHD_SERVE_MAX_BATCH", 64, 1, 4096);
  opts.max_delay_us =
      util::env_size_t("FACTORHD_SERVE_MAX_DELAY_US", 200, 0, 1000000);
  opts.queue_capacity =
      util::env_size_t("FACTORHD_SERVE_QUEUE_CAP", 1024, 1, 1 << 20);
  opts.cache_capacity =
      util::env_size_t("FACTORHD_SERVE_CACHE_CAP", 4096, 0, 1 << 24);
  const service::TraceConfig trace = service::trace_config_from_env();
  opts.trace_sample = trace.sample_every;
  opts.trace_ring = trace.ring_capacity;
  opts.slow_query_us = trace.slow_query_us;
  return opts;
}

std::vector<std::string> split_words(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> words;
  std::string w;
  while (ss >> w) words.push_back(w);
  return words;
}

std::size_t parse_size(const std::string& s, const char* what) {
  std::size_t pos = 0;
  const long long v = std::stoll(s, &pos);
  if (pos != s.size() || v < 0) {
    throw std::invalid_argument(std::string(what) + ": bad number '" + s + "'");
  }
  return static_cast<std::size_t>(v);
}

std::vector<std::size_t> parse_size_list(const std::string& spec,
                                         const char* what) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) out.push_back(parse_size(part, what));
  if (out.empty()) throw std::invalid_argument(std::string(what) + ": empty");
  return out;
}

void cmd_model(ServerState& st, const std::vector<std::string>& args,
               std::ostream& os) {
  if (args.empty()) throw std::invalid_argument("model: missing subcommand");
  if (args[0] == "list") {
    for (const auto& n : st.registry.names()) os << n << "\n";
    os << "ok " << st.registry.names().size() << " models\n";
    return;
  }
  if (args[0] == "gen") {
    if (args.size() < 5 || args.size() > 6) {
      throw std::invalid_argument(
          "usage: model gen NAME F M1[,M2,...] D [SEED]");
    }
    const std::string& name = args[1];
    const std::size_t classes = parse_size(args[2], "F");
    const auto branching = parse_size_list(args[3], "branching");
    const std::size_t dim = parse_size(args[4], "D");
    util::Xoshiro256 rng(args.size() == 6 ? parse_size(args[5], "SEED")
                                          : util::experiment_seed());
    const tax::Taxonomy taxonomy(classes, branching);
    st.registry.add(name, tax::TaxonomyCodebooks(taxonomy, dim, rng));
    os << "ok model " << name << " F=" << classes << " D=" << dim << "\n";
    return;
  }
  if (args[0] == "load" || args[0] == "save") {
    if (args.size() != 3) {
      throw std::invalid_argument("usage: model " + args[0] + " NAME PATH");
    }
    if (args[0] == "load") {
      auto m = st.registry.load_file(args[1], args[2]);
      os << "ok loaded " << args[1] << " (D=" << m->books().dim() << ", "
         << m->num_classes() << " classes";
      // Surface what the snapshot sidecar bought (or cost): adopted
      // records skipped their k-means build, rejected ones were rebuilt.
      const auto& f = m->factorizer();
      if (f.snapshots_adopted() + f.snapshots_rejected() > 0) {
        os << ", snapshots " << f.snapshots_adopted() << " adopted";
        if (f.snapshots_rejected() > 0) {
          os << " / " << f.snapshots_rejected() << " rejected";
        }
      }
      os << ")\n";
    } else {
      auto m = st.registry.get(args[1]);
      if (!m) throw std::invalid_argument("unknown model " + args[1]);
      tax::save_codebooks_file(args[2], m->books());
      os << "ok saved " << args[1] << " to " << args[2];
      // Persist the tier indexes alongside, so the next `model load` of
      // this file starts in milliseconds instead of re-clustering.
      if (m->factorizer().tiered()) {
        const std::string sidecar = service::model_snapshot_path(args[2]);
        const std::size_t n = service::save_model_snapshots(sidecar, *m);
        os << " (+" << n << " tier snapshot" << (n == 1 ? "" : "s") << " -> "
           << sidecar << ")";
      }
      os << "\n";
    }
    return;
  }
  throw std::invalid_argument("model: unknown subcommand " + args[0]);
}

void cmd_serve(ServerState& st, const std::vector<std::string>& args,
               std::ostream& os) {
  if (args.empty() || args.size() > 3) {
    throw std::invalid_argument("usage: serve NAME [MAX_BATCH [MAX_DELAY_US]]");
  }
  auto m = st.registry.get(args[0]);
  if (!m) throw std::invalid_argument("unknown model " + args[0]);
  service::ServiceOptions opts = env_service_options();
  if (args.size() >= 2) opts.max_batch = parse_size(args[1], "MAX_BATCH");
  if (args.size() >= 3) {
    opts.max_delay_us = parse_size(args[2], "MAX_DELAY_US");
  }
  // Construct (and validate) the replacement before draining the current
  // engine, so a bad `serve` command leaves the running session intact.
  auto fresh = std::make_unique<service::FactorizationEngine>(m, opts);
  const bool listener_stopped = stop_listener(st);
  st.engine.reset();  // drain the previous engine
  st.model = m;
  st.engine = std::move(fresh);
  os << "ok serving " << m->name() << " (max_batch=" << opts.max_batch
     << ", max_delay_us=" << opts.max_delay_us
     << ", cache=" << opts.cache_capacity
     << ", shards=" << m->factorizer().shards()
     << ", dispatchers=" << st.engine->options().dispatchers << ")"
     << (listener_stopped ? " (listener stopped - rerun `listen`)" : "")
     << "\n";
}

void cmd_reshard(ServerState& st, const std::vector<std::string>& args,
                 std::ostream& os) {
  if (args.size() != 2) {
    throw std::invalid_argument("usage: reshard NAME SHARDS");
  }
  const std::size_t shards = parse_size(args[1], "SHARDS");
  if (shards == 0 || shards > 1024) {
    throw std::invalid_argument("SHARDS must be in 1..1024 (1 = unshard)");
  }
  // Rebuild + swap in the registry first (zero-downtime: the rebuild runs
  // on a codebook copy outside the registry lock, and sharded scans are
  // bit-identical, so nothing observable changes but throughput).
  auto m = st.registry.reshard(args[0], shards);
  if (!m) throw std::invalid_argument("unknown model " + args[0]);
  os << "ok resharded " << args[0] << " to " << m->factorizer().shards()
     << " shard" << (m->factorizer().shards() == 1 ? "" : "s");
  // If this model is being served, hot-swap the engine the same way a
  // repeated `serve` does: build the replacement over the new partition
  // with the current options, then drain the old engine. In-flight
  // requests complete on the old model; nothing is dropped.
  if (st.engine && st.model && st.model->name() == args[0]) {
    service::ServiceOptions opts = st.engine->options();
    auto fresh = std::make_unique<service::FactorizationEngine>(m, opts);
    const bool listener_stopped = stop_listener(st);
    st.engine.reset();  // drain the previous engine
    st.model = m;
    st.engine = std::move(fresh);
    os << " (engine hot-swapped, dispatchers="
       << st.engine->options().dispatchers << ")"
       << (listener_stopped ? " (listener stopped - rerun `listen`)" : "");
  }
  os << "\n";
}

service::FactorizationEngine& require_engine(ServerState& st) {
  if (!st.engine) {
    throw std::invalid_argument("no engine — run `serve NAME` first");
  }
  return *st.engine;
}

void cmd_listen(ServerState& st, const std::vector<std::string>& args,
                std::ostream& os) {
  if (args.size() == 1 && args[0] == "stop") {
    if (!stop_listener(st)) throw std::invalid_argument("not listening");
    os << "ok listen stopped\n";
    return;
  }
  if (args.size() > 1) {
    throw std::invalid_argument("usage: listen [PORT] | listen stop");
  }
  if (st.net_server) {
    throw std::invalid_argument("already listening on port " +
                                std::to_string(st.net_server->port()));
  }
  require_engine(st);
  net::ServerOptions opts = net::server_options_from_env();
  if (args.size() == 1) {
    const std::size_t port = parse_size(args[0], "PORT");
    if (port > 65535) throw std::invalid_argument("PORT must be 0..65535");
    opts.port = static_cast<std::uint16_t>(port);
  }
  auto server = std::make_unique<net::NetServer>(*st.engine, opts);
  server->start();
  st.net_server = std::move(server);
  os << "ok listening on 127.0.0.1:" << st.net_server->port() << " ("
     << st.net_server->poller_name() << ", admission depth "
     << opts.admission.depth << ", client quota " << opts.admission.client_quota
     << ")\n";
}

void print_result(const ServerState& st, const core::FactorizeResult& r,
                  std::ostream& os) {
  const std::size_t classes = st.model->num_classes();
  for (const auto& obj : r.objects) {
    os << "object " << obj.to_object(classes).to_string();
    if (obj.match_similarity != 0.0) {
      os << " (match " << obj.match_similarity << ")";
    }
    os << "\n";
  }
  os << "ok " << r.objects.size() << " objects, " << r.similarity_ops
     << " similarity ops" << (r.converged ? "" : " (not converged)") << "\n";
}

void cmd_factorize(ServerState& st, std::vector<std::string> args,
                   std::ostream& os) {
  core::FactorizeOptions fopts;
  if (!args.empty() && args[0] == "multi") {
    fopts.multi_object = true;
    args.erase(args.begin());
  }
  if (args.size() != 1) {
    throw std::invalid_argument("usage: factorize [multi] C0,C1,...");
  }
  std::vector<std::int32_t> values;
  {
    std::stringstream ss(args[0]);
    std::string part;
    while (std::getline(ss, part, ',')) {
      std::size_t pos = 0;
      const long v = std::stol(part, &pos);
      if (pos != part.size()) {
        throw std::invalid_argument("component: bad number '" + part + "'");
      }
      values.push_back(static_cast<std::int32_t>(v));
    }
  }
  auto fut = require_engine(st).submit(hdc::Hypervector(std::move(values)),
                                       fopts);
  print_result(st, fut.get(), os);
}

void cmd_roundtrip(ServerState& st, const std::vector<std::string>& args,
                   std::ostream& os) {
  auto& engine = require_engine(st);
  const std::size_t n = args.empty() ? 2 : parse_size(args[0], "N");
  const tax::Taxonomy& taxonomy = st.model->books().taxonomy();
  const tax::Scene scene = tax::random_scene(
      taxonomy, st.rng, {.num_objects = n, .object = {}, .allow_duplicates = true});
  for (const auto& obj : scene) os << "scene  " << obj.to_string() << "\n";
  core::FactorizeOptions fopts;
  fopts.multi_object = n > 1;
  fopts.num_objects_hint = n;
  auto fut = engine.submit(st.model->encoder().encode_scene(scene), fopts);
  const core::FactorizeResult r = fut.get();
  tax::Scene recovered;
  for (const auto& obj : r.objects) {
    recovered.push_back(obj.to_object(st.model->num_classes()));
    os << "result " << recovered.back().to_string() << "\n";
  }
  os << "ok roundtrip " << (tax::same_multiset(recovered, scene) ? "exact"
                                                                 : "MISMATCH")
     << ", " << r.similarity_ops << " similarity ops\n";
}

void cmd_burst(ServerState& st, const std::vector<std::string>& args,
               std::ostream& os) {
  auto& engine = require_engine(st);
  if (args.empty() || args.size() > 2) {
    throw std::invalid_argument("usage: burst COUNT [N]");
  }
  const std::size_t count = parse_size(args[0], "COUNT");
  const std::size_t n = args.size() == 2 ? parse_size(args[1], "N") : 1;
  const tax::Taxonomy& taxonomy = st.model->books().taxonomy();

  std::vector<tax::Scene> scenes;
  std::vector<std::future<core::FactorizeResult>> futures;
  scenes.reserve(count);
  futures.reserve(count);
  core::FactorizeOptions fopts;
  fopts.multi_object = n > 1;
  fopts.num_objects_hint = n;
  const auto before = engine.metrics();
  util::Stopwatch sw;
  for (std::size_t i = 0; i < count; ++i) {
    scenes.push_back(tax::random_scene(
        taxonomy, st.rng,
        {.num_objects = n, .object = {}, .allow_duplicates = true}));
    futures.push_back(
        engine.submit(st.model->encoder().encode_scene(scenes.back()), fopts));
  }
  std::size_t exact = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const core::FactorizeResult r = futures[i].get();
    tax::Scene recovered;
    for (const auto& obj : r.objects) {
      recovered.push_back(obj.to_object(st.model->num_classes()));
    }
    exact += tax::same_multiset(recovered, scenes[i]) ? 1 : 0;
  }
  const double elapsed = sw.elapsed_seconds();
  // Delta against the pre-burst snapshot: report THIS burst's batching,
  // not the engine's lifetime average.
  const auto after = engine.metrics();
  const std::uint64_t batches = after.batches - before.batches;
  const std::uint64_t batched =
      after.batched_requests - before.batched_requests;
  const double mean_batch =
      batches == 0 ? 0.0
                   : static_cast<double>(batched) / static_cast<double>(batches);
  os << "ok burst " << count << " requests, " << exact << " exact, "
     << util::fmt_double(static_cast<double>(count) / elapsed, 0)
     << " req/s, mean batch " << util::fmt_double(mean_batch, 2) << "\n";
}

void cmd_stats(ServerState& st, const std::vector<std::string>& args,
               std::ostream& os) {
  auto& engine = require_engine(st);
  if (!args.empty() && args[0] == "reset") {
    engine.reset_metrics();
    os << "ok stats reset\n";
    return;
  }
  if (!args.empty() && args[0] == "prom") {
    if (args.size() > 2) {
      throw std::invalid_argument("usage: stats prom [FILE]");
    }
    const std::string prom = engine.metrics().to_prometheus();
    if (args.size() == 2) {
      std::ofstream out(args[1]);
      if (!out) throw std::invalid_argument("cannot open " + args[1]);
      out << prom;
      os << "ok stats prom -> " << args[1] << "\n";
    } else {
      os << prom << "ok stats prom\n";
    }
    return;
  }
  if (!args.empty()) {
    throw std::invalid_argument("usage: stats [prom [FILE] | reset]");
  }
  os << engine.metrics().to_string() << "\n";
  const auto dispatchers = engine.dispatcher_stats();
  for (std::size_t i = 0; i < dispatchers.size(); ++i) {
    const auto& d = dispatchers[i];
    os << "dispatcher[" << i << "]: " << d.metrics.batches
       << " batches, mean " << util::fmt_double(d.metrics.mean_batch, 2)
       << " req/batch, max " << d.metrics.max_batch_observed << ", inflight "
       << d.inflight << "\n";
  }
  const auto& ring = engine.trace_ring();
  os << "trace:    sample 1-in-" << ring.sample_every() << " ("
     << (ring.enabled() ? "on" : "off") << "), ring " << ring.occupancy()
     << "/" << ring.capacity() << " traces, " << ring.dropped() << " dropped\n";
  if (st.net_server) os << st.net_server->stats_text() << "\n";
  os << "ok stats\n";
}

void cmd_trace(ServerState& st, const std::vector<std::string>& args,
               std::ostream& os) {
  auto& engine = require_engine(st);
  if (args.empty() || args[0] != "dump" || args.size() > 2) {
    throw std::invalid_argument("usage: trace dump [FILE]");
  }
  const auto samples = engine.trace_samples();
  const std::string json = service::chrome_trace_json(samples);
  if (args.size() == 2) {
    std::ofstream out(args[1]);
    if (!out) throw std::invalid_argument("cannot open " + args[1]);
    out << json << "\n";
    os << "ok trace dump " << samples.size() << " traces -> " << args[1]
       << "\n";
  } else {
    os << json << "\nok trace dump " << samples.size() << " traces\n";
  }
}

// Dispatches one command line. Returns false on `quit`.
bool handle_line(ServerState& st, const std::string& line, std::ostream& os) {
  auto words = split_words(line);
  if (words.empty()) return true;
  const std::string cmd = words[0];
  words.erase(words.begin());
  try {
    if (cmd == "quit") {
      os << "ok bye\n";
      return false;
    }
    if (cmd == "model") {
      cmd_model(st, words, os);
    } else if (cmd == "serve") {
      cmd_serve(st, words, os);
    } else if (cmd == "reshard") {
      cmd_reshard(st, words, os);
    } else if (cmd == "listen") {
      cmd_listen(st, words, os);
    } else if (cmd == "factorize") {
      cmd_factorize(st, std::move(words), os);
    } else if (cmd == "roundtrip") {
      cmd_roundtrip(st, words, os);
    } else if (cmd == "burst") {
      cmd_burst(st, words, os);
    } else if (cmd == "stats") {
      cmd_stats(st, words, os);
    } else if (cmd == "trace") {
      cmd_trace(st, words, os);
    } else if (cmd == "help") {
      os << "commands: model gen|load|save|list, serve, reshard, listen "
            "[PORT]|stop, factorize, roundtrip, burst, stats [prom [FILE] | "
            "reset], trace dump [FILE], quit\nok\n";
    } else {
      throw std::invalid_argument("unknown command " + cmd);
    }
  } catch (const std::exception& e) {
    os << "err: " << e.what() << "\n";
  }
  return true;
}

// Command lines are bounded like every other external input (mirroring the
// 1 MiB pre-allocation guard of hdc/io.cpp) — std::getline alone would
// happily buffer an arbitrarily long hostile line.
constexpr std::size_t kMaxLineLen = 1 << 20;

/// Reads one newline-terminated line with a hard length cap. Oversized
/// lines are consumed (discarded) up to their newline and flagged; embedded
/// NUL bytes are flagged (a text protocol has no business carrying them).
/// \return False at EOF with nothing read.
bool read_bounded_line(std::istream& in, std::string& line, bool& oversized,
                       bool& has_nul) {
  line.clear();
  oversized = false;
  has_nul = false;
  std::size_t consumed = 0;
  int c;
  while ((c = in.get()) != std::char_traits<char>::eof()) {
    ++consumed;
    if (c == '\n') return true;
    if (c == '\0') has_nul = true;
    if (line.size() >= kMaxLineLen) {
      oversized = true;  // keep consuming to the newline, stop buffering
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  return consumed > 0;  // a final unterminated line still counts
}

}  // namespace

int main(int argc, char** /*argv*/) {
  if (argc > 1) {
    std::cerr << "usage: factorhd_serve  (commands on stdin; try `help`)\n";
    return 1;
  }
  ServerState st;
  std::string line;
  bool oversized = false;
  bool has_nul = false;
  while (read_bounded_line(std::cin, line, oversized, has_nul)) {
    if (oversized) {
      std::cout << "err: line too long (max " << kMaxLineLen << " bytes)\n";
    } else if (has_nul) {
      std::cout << "err: embedded NUL byte in command line\n";
    } else if (!handle_line(st, line, std::cout)) {
      break;
    }
    std::cout.flush();
  }
  // ServerState teardown stops the listener first (it references the
  // engine), then the engine drains in-flight requests.
  return 0;
}
