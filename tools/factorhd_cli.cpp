// factorhd — command-line front end for the library's planning utilities.
//
// Subcommands:
//   capacity  --classes F --items M[,M2,...] [--target ACC]
//       Analytic capacity report: predicted accuracy across dimensions and
//       the minimum D meeting the accuracy target.
//   calibrate --classes F --items M --objects N --dim D [--trials T]
//       Empirical TH* grid search for a Rep-3 problem, with the Eq. 2
//       prediction for comparison.
//   demo      [--seed S]
//       One end-to-end encode/factorize round trip, printed step by step.
//   index build --model PATH [--out PATH] [--min-rows N] [--clusters K]
//               [--nprobe P] [--threads T]
//       Build the tiered scan indexes of a model file offline and persist
//       them as a snapshot sidecar (default `PATH.tix`), so later loads
//       skip the k-means build (service/model_snapshot.hpp).
//   index info  --snapshot PATH
//       Validate a snapshot (single FTS1 index or FTX1 sidecar) and print
//       its geometry.
//   info | version
//       Build/version report: compiler and build flags, detected and
//       dispatched SIMD scan tier, the observability configuration, the
//       FACTORHD_* env-knob registry, and a serving-engine self-test (one
//       traced micro-batch through service::FactorizationEngine, metrics
//       and trace-ring occupancy printed).
//   trace     [--seed S] [--requests N] [--sample K] [--out PATH]
//       Self-contained traced serving session: spins up an engine with
//       1-in-K deterministic sampling, runs N requests (with repeats to
//       exercise the cache-hit path), and dumps the sampled traces as
//       Chrome trace-event JSON — load the file in Perfetto or
//       chrome://tracing to see the per-stage spans.
//
// Exit status: 0 on success, 1 on bad usage or a failed demo round trip.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/factorhd.hpp"
#include "hdc/kernels/sharded_item_memory.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/kernels/tiered_snapshot.hpp"
#include "service/model_snapshot.hpp"
#include "service/service.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#ifndef FACTORHD_VERSION_STRING
#define FACTORHD_VERSION_STRING "unknown"
#endif

namespace {

using namespace factorhd;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: factorhd <command> [options]\n"
      "  capacity  --classes F --items M[,M2,...] [--target ACC]\n"
      "  calibrate --classes F --items M --objects N --dim D [--trials T]\n"
      "  demo      [--seed S]\n"
      "  index build --model PATH [--out PATH] [--min-rows N]\n"
      "              [--clusters K] [--nprobe P] [--threads T]\n"
      "  index info  --snapshot PATH\n"
      "  info      (also: version) build flags, SIMD tiers, env knobs\n"
      "  trace     [--seed S] [--requests N] [--sample K] [--out PATH]\n"
      "            traced serving session -> Chrome trace-event JSON\n";
  std::exit(1);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("expected --flag");
    key = key.substr(2);
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    flags[key] = argv[++i];
  }
  return flags;
}

long flag_int(const std::map<std::string, std::string>& flags,
              const std::string& key, long fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::size_t> parse_items(const std::string& spec) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const long v = std::strtol(part.c_str(), nullptr, 10);
    if (v <= 0) usage("items must be positive integers");
    out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) usage("empty --items list");
  return out;
}

int cmd_capacity(const std::map<std::string, std::string>& flags) {
  core::CapacityProblem p;
  p.num_classes = static_cast<std::size_t>(flag_int(flags, "classes", 3));
  p.branching = parse_items(
      flags.count("items") ? flags.at("items") : std::string("16"));
  const double target = flag_double(flags, "target", 0.99);

  std::cout << "capacity report: F=" << p.num_classes << ", branching {";
  for (std::size_t i = 0; i < p.branching.size(); ++i) {
    std::cout << (i ? "," : "") << p.branching[i];
  }
  std::cout << "}\n\n";
  util::TextTable table({"D", "predicted accuracy"});
  for (std::size_t d = 64; d <= 8192; d *= 2) {
    p.dim = d;
    table.add_row({std::to_string(d),
                   util::fmt_percent(core::predicted_object_accuracy(p))});
  }
  table.print(std::cout);
  const std::size_t need = core::required_dimension(p, target);
  std::cout << "\nminimum D for " << util::fmt_percent(target, 1)
            << " accuracy: " << need << "\n";
  return 0;
}

int cmd_calibrate(const std::map<std::string, std::string>& flags) {
  core::ThresholdProblem p;
  p.num_classes = static_cast<std::size_t>(flag_int(flags, "classes", 3));
  p.codebook_size = static_cast<std::size_t>(flag_int(flags, "items", 10));
  p.num_objects = static_cast<std::size_t>(flag_int(flags, "objects", 2));
  p.dim = static_cast<std::size_t>(flag_int(flags, "dim", 2000));
  core::CalibrationOptions opts;
  opts.trials_per_point =
      static_cast<std::size_t>(flag_int(flags, "trials", 24));

  std::cout << "calibrating TH for N=" << p.num_objects << " F="
            << p.num_classes << " M=" << p.codebook_size << " D=" << p.dim
            << " (" << opts.trials_per_point << " trials/point)\n\n";
  const core::CalibrationResult r = core::calibrate_threshold(p, opts);
  util::TextTable table({"TH", "accuracy"});
  for (const auto& pt : r.sweep) {
    table.add_row({util::fmt_double(pt.threshold, 3),
                   util::fmt_percent(pt.accuracy)});
  }
  table.print(std::cout);
  std::cout << "\nempirical TH* (plateau mid): "
            << util::fmt_double(r.best_threshold, 3) << "  plateau ["
            << util::fmt_double(r.plateau_lo, 3) << ", "
            << util::fmt_double(r.plateau_hi, 3) << "]\n"
            << "Eq. 2 prediction:            "
            << util::fmt_double(core::predicted_threshold(p), 3) << "\n";
  return 0;
}

int cmd_demo(const std::map<std::string, std::string>& flags) {
  const auto seed = static_cast<std::uint64_t>(flag_int(flags, "seed", 1));
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(3, {8, 4});
  const tax::TaxonomyCodebooks books(taxonomy, 2048, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  const tax::Scene scene = tax::random_scene(
      taxonomy, rng,
      {.num_objects = 2, .object = {}, .allow_duplicates = false});
  std::cout << "scene: " << scene[0].to_string() << " + "
            << scene[1].to_string() << "\n";
  const hdc::Hypervector target = encoder.encode_scene(scene);
  std::cout << "encoded into Z^" << target.dim()
            << " bundle (max |component| " << target.max_abs() << ")\n";

  core::FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 2;
  opts.collect_trace = true;
  const auto result = factorizer.factorize(target, opts);
  std::cout << "factorized " << result.objects.size() << " objects in "
            << result.trace.size() << " rounds, " << result.similarity_ops
            << " similarity ops, " << result.combinations_checked
            << " combination checks:\n";
  tax::Scene recovered;
  for (const auto& o : result.objects) {
    recovered.push_back(o.to_object(3));
    std::cout << "  " << recovered.back().to_string() << " (match "
              << util::fmt_double(o.match_similarity, 3) << ")\n";
  }
  const bool ok = tax::same_multiset(recovered, scene);
  std::cout << (ok ? "round trip OK" : "ROUND TRIP FAILED") << "\n";
  return ok ? 0 : 1;
}

// `index build` steers the tiered build through the same env knobs a
// serving process would read, so the persisted index is exactly what that
// process would have built itself (the adoption check verifies it anyway).
void override_env(const std::map<std::string, std::string>& flags,
                  const std::string& flag, const char* knob) {
  const auto it = flags.find(flag);
  if (it != flags.end()) ::setenv(knob, it->second.c_str(), 1);
}

int cmd_index_build(const std::map<std::string, std::string>& flags) {
  const auto model_it = flags.find("model");
  if (model_it == flags.end()) usage("index build requires --model PATH");
  const std::string& model_path = model_it->second;
  const std::string out = flags.count("out")
                              ? flags.at("out")
                              : service::model_snapshot_path(model_path);
  override_env(flags, "min-rows", "FACTORHD_TIERED_MIN_ROWS");
  override_env(flags, "clusters", "FACTORHD_TIERED_CLUSTERS");
  override_env(flags, "nprobe", "FACTORHD_TIERED_NPROBE");
  override_env(flags, "threads", "FACTORHD_TIERED_BUILD_THREADS");

  util::Stopwatch sw;
  auto model = service::Model::make("index-build",
                                    tax::load_codebooks_file(model_path));
  const double build_s = sw.elapsed_seconds();
  const std::size_t records = service::save_model_snapshots(out, *model);

  const core::TierSnapshots tiers = model->factorizer().tier_snapshots();
  util::TextTable table({"class", "level", "rows", "clusters", "nprobe",
                         "bytes"});
  for (const auto& [key, tier] : tiers) {
    table.add_row({std::to_string(key.first), std::to_string(key.second),
                   std::to_string(tier->size()),
                   std::to_string(tier->clusters()),
                   std::to_string(tier->nprobe()),
                   std::to_string(hdc::kernels::tiered_snapshot_bytes(*tier))});
  }
  table.print(std::cout);
  std::cout << "\nbuilt " << records << " tier index"
            << (records == 1 ? "" : "es") << " in "
            << util::fmt_double(build_s, 2) << " s -> " << out << "\n";
  if (records == 0) {
    std::cout << "note: no codebook met the tiering threshold "
                 "(FACTORHD_TIERED_MIN_ROWS / --min-rows); the sidecar is "
                 "valid but empty\n";
  }
  return 0;
}

int cmd_index_info(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("snapshot");
  if (it == flags.end()) usage("index info requires --snapshot PATH");
  const std::string& path = it->second;

  util::TextTable table({"class", "level", "dim", "rows", "clusters",
                         "nprobe", "layout", "bytes"});
  // Route on the magic so a corrupt file of either format reports its own
  // format's error instead of the other's "bad magic".
  std::uint32_t magic = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!probe) throw std::runtime_error("cannot read '" + path + "'");
  }
  if (magic == 0x31535446) {  // 'FTS1': one bare tier index
    const auto info = hdc::kernels::read_tiered_index_info(path);
    table.add_row({"-", "-", std::to_string(info.dim),
                   std::to_string(info.rows), std::to_string(info.clusters),
                   std::to_string(info.nprobe),
                   info.ternary ? "ternary" : "bipolar",
                   std::to_string(info.total_bytes)});
    table.print(std::cout);
    std::cout << "\nok: FTS1 snapshot v" << info.version << "\n";
    return 0;
  }
  const core::TierSnapshots tiers = service::load_model_snapshots(path);
  for (const auto& [key, tier] : tiers) {
    table.add_row({std::to_string(key.first), std::to_string(key.second),
                   std::to_string(tier->dim()), std::to_string(tier->size()),
                   std::to_string(tier->clusters()),
                   std::to_string(tier->nprobe()),
                   tier->rows().layout() ==
                           hdc::kernels::PackedItemMemory::Layout::kTernary
                       ? "ternary"
                       : "bipolar",
                   std::to_string(hdc::kernels::tiered_snapshot_bytes(*tier))});
  }
  table.print(std::cout);
  std::cout << "\nok: FTX1 sidecar, " << tiers.size() << " record"
            << (tiers.size() == 1 ? "" : "s") << " (all digests verified)\n";
  return 0;
}

int cmd_info() {
  namespace hk = hdc::kernels;
  std::cout << "factorhd " << FACTORHD_VERSION_STRING << "\n"
            << "compiler:   " << __VERSION__ << "\n"
            << "build:      "
#ifdef NDEBUG
            << "optimized (NDEBUG)"
#else
            << "debug (assertions on)"
#endif
            << ", C++" << (__cplusplus / 100 % 100) << "\n\n";

  const hk::SimdLevel detected = hk::detect_simd_level();
  const hk::SimdLevel dispatched = hk::dispatched_simd_level();
  std::cout << "simd detected:   " << hk::to_string(detected) << "\n"
            << "simd dispatched: " << hk::to_string(dispatched)
            << "  (FACTORHD_SIMD=" << util::env_string("FACTORHD_SIMD", "auto")
            << ")\n";
  std::cout << "available tiers: ";
  bool first = true;
  for (const hk::SimdLevel level :
       {hk::SimdLevel::kScalarWords, hk::SimdLevel::kAVX2,
        hk::SimdLevel::kAVX512, hk::SimdLevel::kNEON}) {
    if (!hk::simd_level_available(level)) continue;
    std::cout << (first ? "" : ", ") << hk::to_string(level);
    first = false;
  }
  std::cout << "\n";

  // Tiered (two-stage) scan configuration as the env knobs resolve it.
  const std::size_t tier_min = hk::tiered_auto_min_rows();
  const hk::TieredConfig tier_cfg = hk::tiered_config_from_env();
  std::cout << "tiered scans:    ";
  if (tier_min == 0) {
    std::cout << "auto-tiering off (FACTORHD_TIERED_MIN_ROWS=0)";
  } else {
    std::cout << "auto at >= " << tier_min << " rows";
  }
  std::cout << ", clusters="
            << (tier_cfg.clusters != 0 ? std::to_string(tier_cfg.clusters)
                                       : std::string("auto(4*sqrt(M))"))
            << ", nprobe="
            << (tier_cfg.nprobe != 0 ? std::to_string(tier_cfg.nprobe)
                                     : std::string("auto(K/16)"))
            << "\n";

  // Scatter-gather shard configuration as the env knobs resolve it.
  const hk::ShardedConfig shard_cfg = hk::sharded_config_from_env();
  const std::size_t shard_min = hk::sharded_auto_min_rows();
  std::cout << "sharded scans:   ";
  if (shard_cfg.shards < 2) {
    std::cout << "off (FACTORHD_SHARDS=" << shard_cfg.shards << ")";
  } else if (shard_min == 0) {
    std::cout << shard_cfg.shards
              << " shards requested, auto-sharding off "
                 "(FACTORHD_SHARD_MIN_ROWS=0)";
  } else {
    std::cout << shard_cfg.shards << " shards at >= " << shard_min << " rows";
  }
  std::cout << "\n";

  // Observability configuration as the env knobs resolve it.
  const service::TraceConfig trace_cfg = service::trace_config_from_env();
  std::cout << "observability:   trace sample ";
  if (trace_cfg.sample_every == 0) {
    std::cout << "off (FACTORHD_TRACE_SAMPLE=0)";
  } else {
    std::cout << "1-in-" << trace_cfg.sample_every;
  }
  std::cout << ", ring " << trace_cfg.ring_capacity << " slots, slow-query ";
  if (trace_cfg.slow_query_us == 0) {
    std::cout << "off (FACTORHD_SLOW_QUERY_US=0)";
  } else {
    std::cout << ">= " << trace_cfg.slow_query_us << " us";
  }
  std::cout << "\n";

  std::cout << "\nenvironment knobs:\n";
  util::TextTable table({"knob", "values", "default", "effect"});
  for (const util::EnvKnob& k : util::env_knobs()) {
    table.add_row({k.name, k.values, k.default_str, k.description});
  }
  table.print(std::cout);

  // Serving-engine self-test: one micro-batch through the full service
  // stack (registry -> engine -> BatchFactorizer -> cache), which also
  // reports the scan tier the packed codebooks actually resolved to.
  util::Xoshiro256 rng(1);
  const tax::Taxonomy taxonomy(2, {8});
  auto model = service::Model::make(
      "self-test", tax::TaxonomyCodebooks(taxonomy, 256, rng));
  std::cout << "\nscan backend:    "
            << (model->factorizer().scan_backend() == hdc::ScanBackend::kPacked
                    ? "packed"
                    : "scalar");
  if (const auto level = model->factorizer().simd_level()) {
    std::cout << " @ " << hk::to_string(*level);
  }
  std::cout << "\n\nengine self-test (D=256, 4 requests + 1 cached repeat, "
               "traced 1-in-1):\n";
  service::FactorizationEngine engine(model,
                                      {.max_batch = 4, .trace_sample = 1});
  const tax::Object obj = tax::random_object(taxonomy, rng);
  const hdc::Hypervector target = model->encoder().encode_object(obj);
  std::vector<std::future<core::FactorizeResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(engine.submit(model->encoder().encode_object(
        tax::random_object(taxonomy, rng))));
  }
  futures.push_back(engine.submit(target));
  for (auto& f : futures) (void)f.get();
  // target's result is cached now, so the repeat exercises the hit path.
  (void)engine.submit(target).get();
  engine.stop();
  std::cout << engine.metrics().to_string() << "\n";
  const auto& ring = engine.trace_ring();
  std::cout << "trace:    ring " << ring.occupancy() << "/" << ring.capacity()
            << " traces, " << ring.dropped() << " dropped (`factorhd trace` "
            << "dumps a Chrome/Perfetto-loadable session)\n";
  return 0;
}

int cmd_trace(const std::map<std::string, std::string>& flags) {
  const auto seed = static_cast<std::uint64_t>(flag_int(flags, "seed", 1));
  const auto requests =
      static_cast<std::size_t>(flag_int(flags, "requests", 64));
  const auto sample = static_cast<std::size_t>(flag_int(flags, "sample", 1));
  const std::string out = flags.count("out") ? flags.at("out") : "";
  if (requests == 0) usage("--requests must be >= 1");

  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(3, {8, 4});
  auto model = service::Model::make("trace-demo",
                                    tax::TaxonomyCodebooks(taxonomy, 512, rng));
  service::ServiceOptions opts;
  opts.max_batch = 16;
  opts.trace_sample = sample;
  opts.trace_ring = std::max<std::size_t>(requests, std::size_t{64});
  service::FactorizationEngine engine(model, opts);

  // A burst of single-object scenes; every 8th repeats the first target so
  // the dump also shows the short cache-hit span shape.
  std::vector<hdc::Hypervector> targets;
  targets.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    if (i != 0 && i % 8 == 0) {
      targets.push_back(targets.front());
      continue;
    }
    targets.push_back(model->encoder().encode_object(
        tax::random_object(taxonomy, rng)));
  }
  std::vector<std::future<core::FactorizeResult>> futures;
  futures.reserve(requests);
  for (const auto& t : targets) futures.push_back(engine.submit(t));
  for (auto& f : futures) (void)f.get();
  engine.stop();

  const auto samples = engine.trace_samples();
  const std::string json = service::chrome_trace_json(samples);
  if (out.empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "error: cannot open " << out << "\n";
      return 1;
    }
    file << json << "\n";
  }
  std::cerr << "traced " << requests << " requests (1-in-" << sample
            << " sampled): " << samples.size() << " traces, "
            << engine.trace_ring().dropped() << " dropped"
            << (out.empty() ? "" : " -> " + out)
            << "\nload in Perfetto (ui.perfetto.dev) or chrome://tracing\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "info" || cmd == "version") {
    if (argc != 2) usage("info takes no options");
    return cmd_info();
  }
  if (cmd == "index") {
    if (argc < 3) usage("index requires a subcommand (build | info)");
    const std::string sub = argv[2];
    const auto flags = parse_flags(argc, argv, 3);
    try {
      if (sub == "build") return cmd_index_build(flags);
      if (sub == "info") return cmd_index_info(flags);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    usage(("unknown index subcommand " + sub).c_str());
  }
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "capacity") return cmd_capacity(flags);
  if (cmd == "calibrate") return cmd_calibrate(flags);
  if (cmd == "demo") return cmd_demo(flags);
  if (cmd == "trace") return cmd_trace(flags);
  usage(("unknown command " + cmd).c_str());
}
