// factorhd — command-line front end for the library's planning utilities.
//
// Subcommands:
//   capacity  --classes F --items M[,M2,...] [--target ACC]
//       Analytic capacity report: predicted accuracy across dimensions and
//       the minimum D meeting the accuracy target.
//   calibrate --classes F --items M --objects N --dim D [--trials T]
//       Empirical TH* grid search for a Rep-3 problem, with the Eq. 2
//       prediction for comparison.
//   demo      [--seed S]
//       One end-to-end encode/factorize round trip, printed step by step.
//   info | version
//       Build/version report: compiler and build flags, detected and
//       dispatched SIMD scan tier, the FACTORHD_* env-knob registry, and a
//       serving-engine self-test (one micro-batch through
//       service::FactorizationEngine, metrics printed).
//
// Exit status: 0 on success, 1 on bad usage or a failed demo round trip.
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/factorhd.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "service/service.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

#ifndef FACTORHD_VERSION_STRING
#define FACTORHD_VERSION_STRING "unknown"
#endif

namespace {

using namespace factorhd;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: factorhd <command> [options]\n"
      "  capacity  --classes F --items M[,M2,...] [--target ACC]\n"
      "  calibrate --classes F --items M --objects N --dim D [--trials T]\n"
      "  demo      [--seed S]\n"
      "  info      (also: version) build flags, SIMD tiers, env knobs\n";
  std::exit(1);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("expected --flag");
    key = key.substr(2);
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    flags[key] = argv[++i];
  }
  return flags;
}

long flag_int(const std::map<std::string, std::string>& flags,
              const std::string& key, long fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::size_t> parse_items(const std::string& spec) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const long v = std::strtol(part.c_str(), nullptr, 10);
    if (v <= 0) usage("items must be positive integers");
    out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) usage("empty --items list");
  return out;
}

int cmd_capacity(const std::map<std::string, std::string>& flags) {
  core::CapacityProblem p;
  p.num_classes = static_cast<std::size_t>(flag_int(flags, "classes", 3));
  p.branching = parse_items(
      flags.count("items") ? flags.at("items") : std::string("16"));
  const double target = flag_double(flags, "target", 0.99);

  std::cout << "capacity report: F=" << p.num_classes << ", branching {";
  for (std::size_t i = 0; i < p.branching.size(); ++i) {
    std::cout << (i ? "," : "") << p.branching[i];
  }
  std::cout << "}\n\n";
  util::TextTable table({"D", "predicted accuracy"});
  for (std::size_t d = 64; d <= 8192; d *= 2) {
    p.dim = d;
    table.add_row({std::to_string(d),
                   util::fmt_percent(core::predicted_object_accuracy(p))});
  }
  table.print(std::cout);
  const std::size_t need = core::required_dimension(p, target);
  std::cout << "\nminimum D for " << util::fmt_percent(target, 1)
            << " accuracy: " << need << "\n";
  return 0;
}

int cmd_calibrate(const std::map<std::string, std::string>& flags) {
  core::ThresholdProblem p;
  p.num_classes = static_cast<std::size_t>(flag_int(flags, "classes", 3));
  p.codebook_size = static_cast<std::size_t>(flag_int(flags, "items", 10));
  p.num_objects = static_cast<std::size_t>(flag_int(flags, "objects", 2));
  p.dim = static_cast<std::size_t>(flag_int(flags, "dim", 2000));
  core::CalibrationOptions opts;
  opts.trials_per_point =
      static_cast<std::size_t>(flag_int(flags, "trials", 24));

  std::cout << "calibrating TH for N=" << p.num_objects << " F="
            << p.num_classes << " M=" << p.codebook_size << " D=" << p.dim
            << " (" << opts.trials_per_point << " trials/point)\n\n";
  const core::CalibrationResult r = core::calibrate_threshold(p, opts);
  util::TextTable table({"TH", "accuracy"});
  for (const auto& pt : r.sweep) {
    table.add_row({util::fmt_double(pt.threshold, 3),
                   util::fmt_percent(pt.accuracy)});
  }
  table.print(std::cout);
  std::cout << "\nempirical TH* (plateau mid): "
            << util::fmt_double(r.best_threshold, 3) << "  plateau ["
            << util::fmt_double(r.plateau_lo, 3) << ", "
            << util::fmt_double(r.plateau_hi, 3) << "]\n"
            << "Eq. 2 prediction:            "
            << util::fmt_double(core::predicted_threshold(p), 3) << "\n";
  return 0;
}

int cmd_demo(const std::map<std::string, std::string>& flags) {
  const auto seed = static_cast<std::uint64_t>(flag_int(flags, "seed", 1));
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(3, {8, 4});
  const tax::TaxonomyCodebooks books(taxonomy, 2048, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  const tax::Scene scene = tax::random_scene(
      taxonomy, rng,
      {.num_objects = 2, .object = {}, .allow_duplicates = false});
  std::cout << "scene: " << scene[0].to_string() << " + "
            << scene[1].to_string() << "\n";
  const hdc::Hypervector target = encoder.encode_scene(scene);
  std::cout << "encoded into Z^" << target.dim()
            << " bundle (max |component| " << target.max_abs() << ")\n";

  core::FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 2;
  opts.collect_trace = true;
  const auto result = factorizer.factorize(target, opts);
  std::cout << "factorized " << result.objects.size() << " objects in "
            << result.trace.size() << " rounds, " << result.similarity_ops
            << " similarity ops, " << result.combinations_checked
            << " combination checks:\n";
  tax::Scene recovered;
  for (const auto& o : result.objects) {
    recovered.push_back(o.to_object(3));
    std::cout << "  " << recovered.back().to_string() << " (match "
              << util::fmt_double(o.match_similarity, 3) << ")\n";
  }
  const bool ok = tax::same_multiset(recovered, scene);
  std::cout << (ok ? "round trip OK" : "ROUND TRIP FAILED") << "\n";
  return ok ? 0 : 1;
}

int cmd_info() {
  namespace hk = hdc::kernels;
  std::cout << "factorhd " << FACTORHD_VERSION_STRING << "\n"
            << "compiler:   " << __VERSION__ << "\n"
            << "build:      "
#ifdef NDEBUG
            << "optimized (NDEBUG)"
#else
            << "debug (assertions on)"
#endif
            << ", C++" << (__cplusplus / 100 % 100) << "\n\n";

  const hk::SimdLevel detected = hk::detect_simd_level();
  const hk::SimdLevel dispatched = hk::dispatched_simd_level();
  std::cout << "simd detected:   " << hk::to_string(detected) << "\n"
            << "simd dispatched: " << hk::to_string(dispatched)
            << "  (FACTORHD_SIMD=" << util::env_string("FACTORHD_SIMD", "auto")
            << ")\n";
  std::cout << "available tiers: ";
  bool first = true;
  for (const hk::SimdLevel level :
       {hk::SimdLevel::kScalarWords, hk::SimdLevel::kAVX2,
        hk::SimdLevel::kAVX512, hk::SimdLevel::kNEON}) {
    if (!hk::simd_level_available(level)) continue;
    std::cout << (first ? "" : ", ") << hk::to_string(level);
    first = false;
  }
  std::cout << "\n";

  // Tiered (two-stage) scan configuration as the env knobs resolve it.
  const std::size_t tier_min = hk::tiered_auto_min_rows();
  const hk::TieredConfig tier_cfg = hk::tiered_config_from_env();
  std::cout << "tiered scans:    ";
  if (tier_min == 0) {
    std::cout << "auto-tiering off (FACTORHD_TIERED_MIN_ROWS=0)";
  } else {
    std::cout << "auto at >= " << tier_min << " rows";
  }
  std::cout << ", clusters="
            << (tier_cfg.clusters != 0 ? std::to_string(tier_cfg.clusters)
                                       : std::string("auto(4*sqrt(M))"))
            << ", nprobe="
            << (tier_cfg.nprobe != 0 ? std::to_string(tier_cfg.nprobe)
                                     : std::string("auto(K/16)"))
            << "\n";

  std::cout << "\nenvironment knobs:\n";
  util::TextTable table({"knob", "values", "default", "effect"});
  for (const util::EnvKnob& k : util::env_knobs()) {
    table.add_row({k.name, k.values, k.default_str, k.description});
  }
  table.print(std::cout);

  // Serving-engine self-test: one micro-batch through the full service
  // stack (registry -> engine -> BatchFactorizer -> cache), which also
  // reports the scan tier the packed codebooks actually resolved to.
  util::Xoshiro256 rng(1);
  const tax::Taxonomy taxonomy(2, {8});
  auto model = service::Model::make(
      "self-test", tax::TaxonomyCodebooks(taxonomy, 256, rng));
  std::cout << "\nscan backend:    "
            << (model->factorizer().scan_backend() == hdc::ScanBackend::kPacked
                    ? "packed"
                    : "scalar");
  if (const auto level = model->factorizer().simd_level()) {
    std::cout << " @ " << hk::to_string(*level);
  }
  std::cout << "\n\nengine self-test (D=256, 4 requests + 1 cached repeat):\n";
  service::FactorizationEngine engine(model, {.max_batch = 4});
  const tax::Object obj = tax::random_object(taxonomy, rng);
  const hdc::Hypervector target = model->encoder().encode_object(obj);
  std::vector<std::future<core::FactorizeResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(engine.submit(model->encoder().encode_object(
        tax::random_object(taxonomy, rng))));
  }
  futures.push_back(engine.submit(target));
  for (auto& f : futures) (void)f.get();
  // target's result is cached now, so the repeat exercises the hit path.
  (void)engine.submit(target).get();
  engine.stop();
  std::cout << engine.metrics().to_string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "info" || cmd == "version") {
    if (argc != 2) usage("info takes no options");
    return cmd_info();
  }
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "capacity") return cmd_capacity(flags);
  if (cmd == "calibrate") return cmd_calibrate(flags);
  if (cmd == "demo") return cmd_demo(flags);
  usage(("unknown command " + cmd).c_str());
}
