#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Scans README.md and docs/*.md for markdown links and inline code paths,
and fails when a relative link target (file or directory) does not exist
or a `#anchor` does not match any heading in the target file. External
(http/https/mailto) links are not fetched. Stdlib only; run from anywhere:

    python3 scripts/check_links.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
# Inline code spans that look like repo paths (the PAPER_MAP tables map
# reproduction claims to source files this way). Only tracked top-level
# directories are checked; build artifacts and generic snippets are not.
CODE_PATH_RE = re.compile(
    r"`((?:src|tests|bench|examples|tools|scripts|docs|cmake)/[\w./-]+)`"
)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation out."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def anchors_of(path):
    text = path.read_text(encoding="utf-8")
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def check_file(path, errors):
    text = path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")
            continue
        if anchor and dest.is_file() and dest.suffix == ".md":
            if anchor not in anchors_of(dest):
                errors.append(
                    f"{path.relative_to(REPO)}: missing anchor -> {target}"
                )
    for code_path in CODE_PATH_RE.findall(text):
        if not (REPO / code_path).exists():
            errors.append(
                f"{path.relative_to(REPO)}: dangling code path -> `{code_path}`"
            )


def main():
    errors = []
    checked = 0
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"missing doc file: {doc.relative_to(REPO)}")
            continue
        check_file(doc, errors)
        checked += 1
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)
    print(f"check_links: {checked} files OK")


if __name__ == "__main__":
    main()
