#!/usr/bin/env python3
"""Validate factorhd's observability exports (Prometheus text + Chrome trace).

Two checks, combinable in one invocation:

``--prom FILE [FILE2]``
    Lints Prometheus text-exposition output (``factorhd_serve`` ``stats
    prom``): metric-name and label grammar, ``# TYPE`` values, every sample
    line belonging to a declared family, counters named ``*_total``, summary
    families carrying ``quantile`` labels plus ``_sum``/``_count`` lines, and
    quantile values non-decreasing within one family+label set. With a
    second file (a later scrape of the same engine, no ``stats reset``
    between them), additionally checks cross-scrape counter monotonicity —
    a counter that goes backwards means double-counted or lost events.

``--trace FILE``
    Schema-checks a Chrome trace-event JSON dump (``trace dump`` /
    ``factorhd trace``): a ``traceEvents`` list of complete ("X") events
    with name/ph/ts/dur/pid/tid, ts/dur non-negative, stage spans lying
    inside their request span, and the dump covering every pipeline stage —
    request, cache_lookup, queue_wait, batch_assembly, scan, merge — so a
    serve session with sampled tracing provably exports the full pipeline.

Exit status: 0 when every requested check passes, 1 otherwise (one
diagnostic line per violation). Only Python stdlib is used.
"""

import argparse
import json
import re
import sys

# Prometheus data-model grammar (https://prometheus.io/docs/concepts/).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{label="value",...} value  — value parsed separately as a float.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')
KNOWN_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

# Every pipeline stage a traced serve session must cover (the enclosing
# request span plus the five per-stage spans of service/trace.cpp).
REQUIRED_TRACE_SPANS = {
    "request", "cache_lookup", "queue_wait", "batch_assembly", "scan",
    "merge",
}


def parse_prom(path):
    """Parses one exposition file into (types, samples, errors) where
    samples maps (name, sorted-label-tuple) -> float value."""
    errors = []
    types = {}
    samples = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            where = f"{path}:{lineno}"
            if line.startswith("# TYPE "):
                parts = line.split(None, 3)
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE line")
                    continue
                _, _, name, kind = parts
                if not METRIC_NAME_RE.match(name):
                    errors.append(f"{where}: bad metric name {name!r}")
                if kind not in KNOWN_TYPES:
                    errors.append(f"{where}: unknown type {kind!r}")
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                types[name] = kind
                continue
            if line.startswith("# HELP "):
                if len(line.split(None, 3)) < 4:
                    errors.append(f"{where}: HELP line lacks text")
                continue
            if line.startswith("#"):
                continue  # free comment
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"{where}: unparseable sample line {line!r}")
                continue
            name = m.group("name")
            labels = []
            raw_labels = m.group("labels")
            if raw_labels:
                consumed = LABEL_RE.findall(raw_labels)
                rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
                if rebuilt != raw_labels:
                    errors.append(f"{where}: bad label syntax {raw_labels!r}")
                    continue
                for key, value in consumed:
                    if not LABEL_NAME_RE.match(key):
                        errors.append(f"{where}: bad label name {key!r}")
                    labels.append((key, value))
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(
                    f"{where}: non-numeric value {m.group('value')!r}"
                )
                continue
            key = (name, tuple(sorted(labels)))
            if key in samples:
                errors.append(f"{where}: duplicate sample {key}")
            samples[key] = value
    return types, samples, errors


def family_of(name, types):
    """Maps a sample name to its declared family: summaries expose _sum and
    _count lines under the family's TYPE declaration."""
    if name in types:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def lint_prom(path):
    types, samples, errors = parse_prom(path)
    if not samples:
        errors.append(f"{path}: no samples")
    quantiles = {}  # (family, non-quantile labels) -> [(q, value)]
    for (name, labels), value in samples.items():
        family = family_of(name, types)
        if family is None:
            errors.append(f"{path}: sample {name} has no # TYPE declaration")
            continue
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(f"{path}: counter {name} not named *_total")
            if value < 0:
                errors.append(f"{path}: counter {name}{labels} is negative")
        if kind == "summary" and name == family:
            qlabel = [v for k, v in labels if k == "quantile"]
            if len(qlabel) != 1:
                errors.append(
                    f"{path}: summary sample {name}{labels} lacks a single "
                    "quantile label"
                )
                continue
            rest = tuple(kv for kv in labels if kv[0] != "quantile")
            quantiles.setdefault((family, rest), []).append(
                (float(qlabel[0]), value)
            )
    # Summary families must carry their _sum/_count lines per label set, and
    # quantile values must be non-decreasing in q (p50 <= p99 <= p999).
    for (family, rest), qs in sorted(quantiles.items()):
        for suffix in ("_sum", "_count"):
            if (family + suffix, rest) not in samples:
                errors.append(
                    f"{path}: summary {family}{dict(rest)} lacks "
                    f"{family}{suffix}"
                )
        qs.sort()
        values = [v for _, v in qs]
        if values != sorted(values):
            errors.append(
                f"{path}: summary {family}{dict(rest)} quantiles decrease: "
                f"{qs}"
            )
    return types, samples, errors


def check_prom(paths):
    first_types, first_samples, errors = lint_prom(paths[0])
    if len(paths) == 2:
        second_types, second_samples, more = lint_prom(paths[1])
        errors += more
        # Cross-scrape monotonicity: counters of the same engine epoch only
        # accumulate. (Scrape the two files without a `stats reset` between
        # them.)
        for (name, labels), before in sorted(first_samples.items()):
            family = family_of(name, first_types)
            if family is None or first_types[family] != "counter":
                continue
            after = second_samples.get((name, labels))
            if after is None:
                errors.append(
                    f"{paths[1]}: counter {name}{dict(labels)} vanished "
                    "between scrapes"
                )
            elif after < before:
                errors.append(
                    f"{paths[1]}: counter {name}{dict(labels)} went "
                    f"backwards: {before} -> {after}"
                )
    return errors


def check_trace(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON: {e}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]
    if not events:
        return [f"{path}: traceEvents is empty (was tracing sampled on?)"]
    requests = {}  # tid -> (ts, ts+dur) of the enclosing request span
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                errors.append(f"{where}: missing {field!r}")
        if e.get("ph") == "X" and "dur" not in e:
            errors.append(f"{where}: complete event lacks 'dur'")
        if e.get("ts", 0) < 0 or e.get("dur", 0) < 0:
            errors.append(f"{where}: negative ts/dur")
        if e.get("name") == "request" and e.get("ph") == "X":
            requests[e.get("tid")] = (
                e.get("ts", 0.0),
                e.get("ts", 0.0) + e.get("dur", 0.0),
            )
    names = {e.get("name") for e in events}
    missing = REQUIRED_TRACE_SPANS - names
    if missing:
        errors.append(
            f"{path}: pipeline stages never traced: {sorted(missing)}"
        )
    # Stage spans must lie inside their request's span (same tid); a span
    # outside its request means mis-stamped timestamps.
    slack = 1.0  # us: stage endpoints are stamped around the request's
    for i, e in enumerate(events):
        if e.get("name") == "request" or e.get("ph") != "X":
            continue
        window = requests.get(e.get("tid"))
        if window is None:
            continue
        ts, end = e.get("ts", 0.0), e.get("ts", 0.0) + e.get("dur", 0.0)
        if ts < window[0] - slack or end > window[1] + slack:
            errors.append(
                f"{path}: traceEvents[{i}] ({e.get('name')}, tid "
                f"{e.get('tid')}) lies outside its request span"
            )
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--prom",
        nargs="+",
        metavar="FILE",
        help="lint one exposition file; with a second file, also check "
        "cross-scrape counter monotonicity",
    )
    ap.add_argument(
        "--trace", metavar="FILE",
        help="schema-check a Chrome trace-event JSON dump",
    )
    args = ap.parse_args()
    if not args.prom and not args.trace:
        ap.error("nothing to do: pass --prom and/or --trace")
    if args.prom and len(args.prom) > 2:
        ap.error("--prom takes one or two files")

    errors = []
    if args.prom:
        errors += check_prom(args.prom)
    if args.trace:
        errors += check_trace(args.trace)
    if errors:
        for e in errors:
            print(f"check_obs.py: {e}", file=sys.stderr)
        sys.exit(1)
    if args.prom:
        scrapes = "scrapes" if len(args.prom) == 2 else "scrape"
        print(f"check_obs.py: {len(args.prom)} prom {scrapes} OK")
    if args.trace:
        print(f"check_obs.py: trace {args.trace} OK")


if __name__ == "__main__":
    main()
