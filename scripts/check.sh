#!/usr/bin/env bash
# Tier-1 verify, end to end: configure, build, run the full CTest corpus.
# The default (full) mode additionally validates the committed bench
# baselines (BENCH_kernels.json, BENCH_scale.json, BENCH_service.json,
# BENCH_latency.json) against their schemas, link-checks the markdown
# docs, and runs a scripted factorhd_serve session with tracing on,
# validating the Prometheus scrapes and the Chrome trace dump with
# scripts/check_obs.py.
#
# Usage:
#   scripts/check.sh          # full corpus (the ROADMAP tier-1 gate)
#   scripts/check.sh --fast   # unit-labelled suites only (pre-commit loop)
#   scripts/check.sh --asan   # Debug + ASan/UBSan + -Werror, full corpus
#   scripts/check.sh --tsan   # Debug + ThreadSanitizer + -Werror, the
#                             # threading suites (batch determinism, kernel
#                             # fuzz, batch, service soak, tiered
#                             # snapshot/parallel build, sharded
#                             # scatter-gather, network faults) only
#
# Extra arguments after the mode are forwarded to ctest.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CHECK_BASELINES=1
CMAKE_ARGS=()
CTEST_ARGS=(--output-on-failure -j "$(nproc)")

case "${1:-}" in
  --fast)
    shift
    CHECK_BASELINES=0
    CTEST_ARGS+=(-L unit)
    ;;
  --asan)
    shift
    CHECK_BASELINES=0
    BUILD_DIR=build-asan
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug -DFACTORHD_SANITIZE=ON -DFACTORHD_WERROR=ON)
    ;;
  --tsan)
    shift
    CHECK_BASELINES=0
    BUILD_DIR=build-tsan
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug -DFACTORHD_TSAN=ON -DFACTORHD_WERROR=ON)
    # The suites that exercise the worker pools (BatchFactorizer, the
    # parallel plane scans, the parallel tier build, the sharded
    # scatter-gather, the serving engine, the wait-free metrics/trace
    # plumbing, and the network front end's event loop + admission queue
    # over real sockets); everything else is single-threaded.
    CTEST_ARGS+=(-R 'BatchDeterminism|KernelFuzz|BatchTest|ServiceSoak|TieredSnapshot|ModelSnapshot|ShardedMemory|ShardedSoak|MetricsConcurrency|TraceRing|NetFaults')
    ;;
esac
CTEST_ARGS+=("$@")

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}"

if [[ "$CHECK_BASELINES" == 1 ]]; then
  python3 scripts/bench_json.py --check BENCH_kernels.json
  python3 scripts/bench_json.py --check BENCH_scale.json
  python3 scripts/bench_json.py --check BENCH_service.json
  python3 scripts/bench_json.py --check BENCH_latency.json
  python3 scripts/check_links.py

  # Observability gate: drive a traced serve session, scrape Prometheus
  # twice (no reset in between), dump the Chrome trace, and validate all
  # three exports. Catches exposition-grammar drift, counters that go
  # backwards, and stage spans that stop being emitted.
  OBS_DIR=$(mktemp -d)
  trap 'rm -rf "$OBS_DIR"' EXIT
  printf '%s\n' \
    'model gen obs 3 8,4 2048 7' \
    'serve obs 8 100' \
    'burst 24 1' \
    "stats prom $OBS_DIR/prom1.txt" \
    'burst 24 2' \
    "stats prom $OBS_DIR/prom2.txt" \
    "trace dump $OBS_DIR/trace.json" \
    'quit' \
    | FACTORHD_TRACE_SAMPLE=1 "$BUILD_DIR/bin/factorhd_serve" > "$OBS_DIR/session.log"
  python3 scripts/check_obs.py \
    --prom "$OBS_DIR/prom1.txt" "$OBS_DIR/prom2.txt" \
    --trace "$OBS_DIR/trace.json"
fi
