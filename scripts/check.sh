#!/usr/bin/env bash
# Tier-1 verify, end to end: configure, build, run the full CTest corpus.
# The default (full) mode additionally validates the committed bench
# baselines (BENCH_kernels.json, BENCH_scale.json) against their schemas
# and link-checks the markdown docs.
#
# Usage:
#   scripts/check.sh          # full corpus (the ROADMAP tier-1 gate)
#   scripts/check.sh --fast   # unit-labelled suites only (pre-commit loop)
#   scripts/check.sh --asan   # Debug + ASan/UBSan + -Werror, full corpus
#   scripts/check.sh --tsan   # Debug + ThreadSanitizer + -Werror, the
#                             # threading suites (batch determinism, kernel
#                             # fuzz, batch, service soak, tiered
#                             # snapshot/parallel build, sharded
#                             # scatter-gather) only
#
# Extra arguments after the mode are forwarded to ctest.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CHECK_BASELINES=1
CMAKE_ARGS=()
CTEST_ARGS=(--output-on-failure -j "$(nproc)")

case "${1:-}" in
  --fast)
    shift
    CHECK_BASELINES=0
    CTEST_ARGS+=(-L unit)
    ;;
  --asan)
    shift
    CHECK_BASELINES=0
    BUILD_DIR=build-asan
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug -DFACTORHD_SANITIZE=ON -DFACTORHD_WERROR=ON)
    ;;
  --tsan)
    shift
    CHECK_BASELINES=0
    BUILD_DIR=build-tsan
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug -DFACTORHD_TSAN=ON -DFACTORHD_WERROR=ON)
    # The suites that exercise the worker pools (BatchFactorizer, the
    # parallel plane scans, the parallel tier build, the sharded
    # scatter-gather, and the serving engine); everything else is
    # single-threaded.
    CTEST_ARGS+=(-R 'BatchDeterminism|KernelFuzz|BatchTest|ServiceSoak|TieredSnapshot|ModelSnapshot|ShardedMemory|ShardedSoak')
    ;;
esac
CTEST_ARGS+=("$@")

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}"

if [[ "$CHECK_BASELINES" == 1 ]]; then
  python3 scripts/bench_json.py --check BENCH_kernels.json
  python3 scripts/bench_json.py --check BENCH_scale.json
  python3 scripts/check_links.py
fi
