#!/usr/bin/env python3
"""Convert Google Benchmark JSON output into BENCH_kernels.json (schema v3).

Reads the raw ``--benchmark_format=json`` output of bench_kernels (BM_Scan*
entries), pairs each packed benchmark with its scalar twin at the same
(M, D), and emits the repo's perf-baseline schema (see README "Kernel
benchmarks"):

    {
      "schema": "factorhd.bench_kernels.v3",
      "mode": "full" | "smoke",
      "context": {...,                    # machine/build provenance
                  "simd_level": "avx512", # tier kPacked scans dispatched to
                  "simd_detected": "avx512"},
      "benchmarks": [{"name", "kernel", "backend", "level", "m", "d",
                      "real_time_ns", "cpu_time_ns", "items_per_second"}],
      "speedup": {
        "scan_best/m64/d8192": 15.0,          # scalar_cpu / dispatched packed
        "scan_best/m64/d8192/avx2": 8.1, ...  # scalar_cpu / forced-tier cpu
      },
      "block_speedup": {
        "scan_block/m4096/d8192": 3.8, ...    # per-query ips: Q=64 over Q=1
      }
    }

`level` is the SIMD tier a row executed at: null for the scalar int32
backend, the forced tier for BM_Scan*Packed{Words,AVX2,AVX512,NEON} rows,
and the context's dispatched tier for plain BM_Scan*Packed rows.
``BM_ScanBlockPacked/M/D/Q`` rows (kernel ``scan_block``) carry an extra
``q`` field — the number of packed queries per ``best_block`` call — and
feed the ``block_speedup`` table: per-query throughput at Q=64 over Q=1
for each (M, D), the multi-query amortization the blocked kernels buy.

``--check FILE`` validates an emitted file and exits non-zero on
violations — the CI hook keeping the emitters and these schemas in
lockstep. The file's own ``schema`` field selects the validator:

* ``factorhd.bench_kernels.v2`` — the Google-Benchmark conversion above
  without the blocked-scan rows. Accepted for older baselines.
* ``factorhd.bench_kernels.v3`` — v2 plus ``scan_block`` rows and the
  ``block_speedup`` table. Full-mode baselines must show
  ``scan_block/m4096/d8192 >= 3.0`` (the ISSUE 7 blocked-scan acceptance
  bound; at tiny M the per-plane row pass is too short to amortize, so
  the bound is pinned at the GEMM-shaped 4096-row point).
* ``factorhd.bench_scale.v1`` — the tiered-scan M-sweep written directly
  by ``bench_ext_scale --json`` (context with dim/queries/flip_rate/seed/
  SIMD tiers; one sweep row per codebook size M with clusters, nprobe,
  per-query times, speedup, recall@1, and similarity-op counts; a
  ``headline`` block mirroring the largest-M row — the ISSUE 5 acceptance
  surface). Accepted for older baselines; current emitters write v4.
* ``factorhd.bench_scale.v2`` — v1 plus the ISSUE 6 build/persistence
  columns per row: ``build_seconds`` (default screened/pooled build),
  ``build_reference_seconds`` (single-threaded exhaustive build; 0 when
  skipped above the headline M), ``build_speedup`` (reference/default),
  and ``snapshot_load_seconds`` (FTS1 file round-trip load). Full-mode
  baselines must show build_speedup >= 3.5 on the M=262144 row and a
  sub-second snapshot load on the largest-M row (committed as
  BENCH_scale.json).
* ``factorhd.bench_scale.v3`` — v2 plus the ISSUE 7 adaptive-probing
  columns per row: ``adaptive_nprobe_min`` / ``adaptive_nprobe_max`` (the
  floor/ceiling the adaptive view re-probed the same clustering with),
  ``mean_probes`` (mean buckets actually probed per query), and
  ``adaptive_recall_at_1``. Full-mode baselines must show
  adaptive_recall_at_1 >= 0.99 with mean_probes <= 0.5 * clusters / 16
  on the M=262144 acceptance row.
* ``factorhd.bench_service.v1`` — the serving-runtime rows written by
  ``bench_ext_service --json`` (context with dim/items/producers/requests/
  window/seed/SIMD tier; one row per load configuration with throughput
  and p50/p99/p99.9; an ``overhead`` block comparing the batch=64
  configuration with sampled tracing on vs off). Full-mode baselines must
  show ``overhead.ratio >= 0.97`` — sampled tracing at the deployment
  default (1-in-64) may cost at most 3% throughput, the ISSUE 9
  observability acceptance bound (committed as BENCH_service.json).
* ``factorhd.bench_latency.v1`` — the open-loop network load sweep written
  by ``bench_ext_latency --json`` (context with dim/items/saturation_rps/
  hot_fraction/admission bounds/seed; one row per load multiplier with
  offered rate, goodput, p50/p99/p99.9 result latency, and the
  results/overloads/errors/timeouts accounting). Full-mode baselines must
  show p99 <= 10x p50 on the 0.5x-saturation row and, on the 4x row,
  excess load shed by explicit overload rejects with zero timeouts — the
  ISSUE 10 admission-control acceptance bounds (committed as
  BENCH_latency.json).
* ``factorhd.bench_scale.v4`` — v3 plus the ISSUE 8 scatter-gather
  ``shard_sweep`` list per row: one entry per shard count (ascending)
  with ``shards``, ``build_seconds`` (per-shard tier builds),
  ``sharded_us_per_query``, ``speedup`` (exact full scan / sharded —
  the same baseline as every other speedup field), ``recall_at_1``,
  and ``sharded_sim_ops``; the headline gains ``shard_speedup`` (the
  largest-M 4-shard aggregate). Full-mode baselines must show
  shard speedup >= 3.0 at recall@1 >= 0.99 on the largest-M 4-shard
  entry — the ISSUE 8 acceptance bound.

Only Python stdlib is used.
"""

import argparse
import json
import re
import sys

# BM_ScanBestPackedAVX2/64/8192 -> kernel "scan_best", backend "packed",
# level "avx2", m, d. The level suffix is absent on scalar and
# dispatched-packed rows.
NAME_RE = re.compile(
    r"^BM_Scan(?P<kernel>Best|Dots)(?P<backend>Scalar|Packed)"
    r"(?P<level>Words|AVX2|AVX512|NEON)?/(?P<m>\d+)/(?P<d>\d+)$"
)

# BM_ScanBlockPacked/4096/8192/64 -> kernel "scan_block" at Q = 64 packed
# queries per best_block call (dispatched tier only; no forced variants).
BLOCK_NAME_RE = re.compile(
    r"^BM_ScanBlockPacked/(?P<m>\d+)/(?P<d>\d+)/(?P<q>\d+)$"
)

# Benchmark-name level suffix -> canonical SimdLevel name (simd.hpp).
LEVEL_NAMES = {"Words": "scalar", "AVX2": "avx2", "AVX512": "avx512",
               "NEON": "neon"}
KNOWN_LEVELS = set(LEVEL_NAMES.values())

SCHEMA_V2 = "factorhd.bench_kernels.v2"
SCHEMA = "factorhd.bench_kernels.v3"
SCALE_SCHEMA = "factorhd.bench_scale.v1"
SCALE_SCHEMA_V2 = "factorhd.bench_scale.v2"
SCALE_SCHEMA_V3 = "factorhd.bench_scale.v3"
SCALE_SCHEMA_V4 = "factorhd.bench_scale.v4"
SERVICE_SCHEMA = "factorhd.bench_service.v1"
LATENCY_SCHEMA = "factorhd.bench_latency.v1"

# Full-mode blocked-scan acceptance (ISSUE 7): per-query throughput at
# Q=64 must be at least this multiple of Q=1 on the m=4096/d=8192 point.
MIN_BLOCK_SPEEDUP = 3.0
BLOCK_ACCEPTANCE_KEY = "scan_block/m4096/d8192"


def parse_benchmarks(raw, dispatched_level):
    out = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        block = BLOCK_NAME_RE.match(b.get("name", ""))
        if block:
            out.append(
                {
                    "name": b["name"],
                    "kernel": "scan_block",
                    "backend": "packed",
                    "level": dispatched_level,
                    "forced": False,
                    "m": int(block.group("m")),
                    "d": int(block.group("d")),
                    "q": int(block.group("q")),
                    "real_time_ns": b["real_time"] * scale,
                    "cpu_time_ns": b["cpu_time"] * scale,
                    "items_per_second": b.get("items_per_second"),
                }
            )
            continue
        match = NAME_RE.match(b.get("name", ""))
        if not match:
            continue
        backend = match.group("backend").lower()
        suffix = match.group("level")
        if backend == "scalar":
            level = None  # int32 loops: no plane tier at all
        elif suffix is not None:
            level = LEVEL_NAMES[suffix]
        else:
            level = dispatched_level
        out.append(
            {
                "name": b["name"],
                "kernel": "scan_" + match.group("kernel").lower(),
                "backend": backend,
                "level": level,
                # Forced-tier row (False for the dispatched kPacked pair the
                # perf trajectory tracks).
                "forced": suffix is not None,
                "m": int(match.group("m")),
                "d": int(match.group("d")),
                "real_time_ns": b["real_time"] * scale,
                "cpu_time_ns": b["cpu_time"] * scale,
                "items_per_second": b.get("items_per_second"),
            }
        )
    return out


def speedup_slot(b):
    """Per-point slot of a row in the speedup table: the scalar int32
    reference, the dispatched packed pair, or a forced tier ("words" for the
    forced scalar-word tier, so it cannot collide with the int32 slot)."""
    if b.get("backend") == "scalar":
        return "int32"
    if not b.get("forced"):
        return "packed"
    return "words" if b.get("level") == "scalar" else b.get("level")


def compute_speedups(benchmarks):
    """scalar_cpu / packed_cpu per (kernel, m, d): the dispatched pair under
    the bare key (the perf-trajectory headline), each forced tier under
    key/<words|avx2|avx512|neon>."""
    by_point = {}
    for b in benchmarks:
        by_point.setdefault((b["kernel"], b["m"], b["d"]), {})[
            speedup_slot(b)] = b
    speedups = {}
    for (kernel, m, d), slots in sorted(by_point.items()):
        scalar = slots.get("int32")
        if scalar is None:
            continue
        for slot, b in sorted(slots.items()):
            if slot == "int32" or b["cpu_time_ns"] <= 0:
                continue
            key = f"{kernel}/m{m}/d{d}"
            if slot != "packed":
                key += f"/{slot}"
            speedups[key] = round(scalar["cpu_time_ns"] / b["cpu_time_ns"], 3)
    return speedups


def compute_block_speedups(benchmarks):
    """Per-query throughput amortization of the blocked scan: for each
    (m, d) with both a Q=1 and a Q=64 scan_block row, cpu_per_query(Q=1) /
    cpu_per_query(Q=64) under key "scan_block/m{m}/d{d}"."""
    by_point = {}
    for b in benchmarks:
        if b["kernel"] != "scan_block":
            continue
        by_point.setdefault((b["m"], b["d"]), {})[b["q"]] = b
    speedups = {}
    for (m, d), rows in sorted(by_point.items()):
        q1, q64 = rows.get(1), rows.get(64)
        if q1 is None or q64 is None:
            continue
        per_query_q64 = q64["cpu_time_ns"] / 64.0
        if per_query_q64 <= 0:
            continue
        speedups[f"scan_block/m{m}/d{d}"] = round(
            q1["cpu_time_ns"] / per_query_q64, 3
        )
    return speedups


def validate(doc, schema=SCHEMA):
    """Returns a list of kernels v2/v3-schema violations (empty = valid)."""
    v3 = schema == SCHEMA
    errors = []
    if doc.get("schema") != schema:
        errors.append(f"schema is {doc.get('schema')!r}, expected {schema!r}")
    if doc.get("mode") not in ("full", "smoke"):
        errors.append(f"mode is {doc.get('mode')!r}")
    ctx = doc.get("context", {})
    if ctx.get("simd_level") not in KNOWN_LEVELS:
        errors.append(f"context.simd_level is {ctx.get('simd_level')!r}")
    if ctx.get("simd_detected") not in KNOWN_LEVELS:
        errors.append(f"context.simd_detected is {ctx.get('simd_detected')!r}")
    benchmarks = doc.get("benchmarks") or []
    if not benchmarks:
        errors.append("no benchmarks recorded")
    well_formed = []
    for b in benchmarks:
        required = ("kernel", "backend", "level", "forced", "m", "d")
        if b.get("kernel") == "scan_block":
            required += ("q",)
        missing = [k for k in required if k not in b]
        if missing:
            errors.append(f"{b.get('name')}: missing fields {missing}")
            continue
        if b["backend"] == "scalar":
            if b["level"] is not None:
                errors.append(f"{b.get('name')}: scalar row with level")
        elif b["level"] not in KNOWN_LEVELS:
            errors.append(f"{b.get('name')}: bad level {b['level']!r}")
        well_formed.append(b)
    speedups = doc.get("speedup") or {}
    if not speedups:
        errors.append("no speedups recorded")
    # Every dispatched packed point must have its headline speedup, and every
    # forced tier measured must appear under a per-level key. scan_block rows
    # live in the block_speedup table instead.
    for b in well_formed:
        if b["backend"] != "packed" or b["kernel"] == "scan_block":
            continue
        key = f"{b['kernel']}/m{b['m']}/d{b['d']}"
        slot = speedup_slot(b)
        if slot != "packed":
            key += f"/{slot}"
        if key not in speedups:
            errors.append(f"missing speedup entry {key!r}")
    if v3:
        block_rows = [b for b in well_formed if b["kernel"] == "scan_block"]
        if not block_rows:
            errors.append("v3 file has no scan_block rows")
        block_speedups = doc.get("block_speedup") or {}
        # Every (m, d) measured at both Q=1 and Q=64 must carry its
        # amortization ratio.
        qs_by_point = {}
        for b in block_rows:
            qs_by_point.setdefault((b["m"], b["d"]), set()).add(b["q"])
        for (m, d), qs in sorted(qs_by_point.items()):
            if {1, 64} <= qs and f"scan_block/m{m}/d{d}" not in block_speedups:
                errors.append(f"missing block_speedup entry scan_block/m{m}/d{d}")
        # Full-mode acceptance (ISSUE 7): Q=64 must amortize >= 3x over
        # Q=1 per query on the GEMM-shaped m=4096/d=8192 point.
        if doc.get("mode") == "full":
            got = block_speedups.get(BLOCK_ACCEPTANCE_KEY)
            if got is None:
                errors.append(
                    f"full-mode v3 file lacks {BLOCK_ACCEPTANCE_KEY!r}"
                )
            elif got < MIN_BLOCK_SPEEDUP:
                errors.append(
                    f"block_speedup {BLOCK_ACCEPTANCE_KEY}: {got} < "
                    f"{MIN_BLOCK_SPEEDUP}"
                )
    return errors


SCALE_ROW_FIELDS_V1 = (
    "m", "clusters", "nprobe", "build_ms", "exact_us_per_query",
    "tiered_us_per_query", "speedup", "recall_at_1", "exact_sim_ops",
    "tiered_sim_ops",
)

# v2 renames build_ms -> build_seconds and adds the ISSUE 6 build /
# persistence measurements.
SCALE_ROW_FIELDS_V2 = (
    "m", "clusters", "nprobe", "build_seconds", "build_reference_seconds",
    "build_speedup", "snapshot_load_seconds", "exact_us_per_query",
    "tiered_us_per_query", "speedup", "recall_at_1", "exact_sim_ops",
    "tiered_sim_ops",
)

# v3 adds the ISSUE 7 adaptive-probing measurements: the floor/ceiling the
# adaptive view re-probed the clustering with, the mean buckets actually
# probed per query, and the recall the adaptive scan achieved.
SCALE_ROW_FIELDS_V3 = SCALE_ROW_FIELDS_V2 + (
    "adaptive_nprobe_min", "adaptive_nprobe_max", "mean_probes",
    "adaptive_recall_at_1",
)

# v4 adds the ISSUE 8 scatter-gather shard sweep: a per-row list of
# per-shard-count measurements over the same packed rows and queries.
SCALE_ROW_FIELDS_V4 = SCALE_ROW_FIELDS_V3 + ("shard_sweep",)
SHARD_ENTRY_FIELDS = (
    "shards", "build_seconds", "sharded_us_per_query", "speedup",
    "recall_at_1", "sharded_sim_ops",
)

# The M=262144 acceptance row of full-mode baselines must show at least
# this build speedup (screened/pooled build vs the exhaustive
# single-threaded reference). 3.5 admits the committed baseline's 3.623x,
# recorded on a 4-core runner where the assignment passes scale sub-
# linearly (the previous 4.0 bound rejected the very baseline the PR that
# introduced it committed) ...
MIN_BUILD_SPEEDUP = 3.5
# ... and the largest-M row must load its snapshot in under a second.
MAX_SNAPSHOT_LOAD_SECONDS = 1.0
# v3 adaptive-probing acceptance at M=262144 (ISSUE 7): recall@1 at least
# this ...
MIN_ADAPTIVE_RECALL = 0.99
# ... with mean probes at most this fraction of the fixed-probing default
# (nprobe = clusters / 16).
MAX_MEAN_PROBE_FRACTION = 0.5
# v4 scatter-gather acceptance (ISSUE 8): the largest-M 4-shard entry of
# full-mode baselines must reach at least this aggregate scan speedup over
# the exact full scan (the same baseline as every other speedup field) ...
MIN_SHARD_SPEEDUP = 3.0
# ... at no recall cost beyond the usual tiered bound.
MIN_SHARD_RECALL = 0.99
SHARD_ACCEPTANCE_COUNT = 4


def validate_scale(doc, schema=SCALE_SCHEMA):
    """Returns a list of bench_scale v1/v2/v3/v4 violations (empty = valid)."""
    v4 = schema == SCALE_SCHEMA_V4
    v3 = v4 or schema == SCALE_SCHEMA_V3
    v2 = v3 or schema == SCALE_SCHEMA_V2
    if v4:
        row_fields = SCALE_ROW_FIELDS_V4
    elif v3:
        row_fields = SCALE_ROW_FIELDS_V3
    elif v2:
        row_fields = SCALE_ROW_FIELDS_V2
    else:
        row_fields = SCALE_ROW_FIELDS_V1
    errors = []
    if doc.get("schema") != schema:
        errors.append(
            f"schema is {doc.get('schema')!r}, expected {schema!r}"
        )
    if doc.get("mode") not in ("full", "smoke"):
        errors.append(f"mode is {doc.get('mode')!r}")
    ctx = doc.get("context", {})
    for field in ("dim", "queries", "flip_rate", "seed"):
        if field not in ctx:
            errors.append(f"context.{field} missing")
    if ctx.get("simd_level") not in KNOWN_LEVELS:
        errors.append(f"context.simd_level is {ctx.get('simd_level')!r}")
    if ctx.get("simd_detected") not in KNOWN_LEVELS:
        errors.append(f"context.simd_detected is {ctx.get('simd_detected')!r}")
    sweep = doc.get("sweep") or []
    if not sweep:
        errors.append("no sweep rows recorded")
    prev_m = 0
    for row in sweep:
        missing = [f for f in row_fields if f not in row]
        if missing:
            errors.append(f"sweep m={row.get('m')}: missing fields {missing}")
            continue
        if row["m"] <= prev_m:
            errors.append(f"sweep m={row['m']}: rows not strictly ascending")
        prev_m = row["m"]
        if not 0.0 <= row["recall_at_1"] <= 1.0:
            errors.append(f"sweep m={row['m']}: recall_at_1 out of [0, 1]")
        if row["speedup"] <= 0:
            errors.append(f"sweep m={row['m']}: non-positive speedup")
        if not 1 <= row["nprobe"] <= row["clusters"]:
            errors.append(f"sweep m={row['m']}: nprobe outside [1, clusters]")
        if row["tiered_sim_ops"] > row["exact_sim_ops"]:
            errors.append(
                f"sweep m={row['m']}: tiered scans more rows than exact"
            )
        if v2:
            if row["build_seconds"] <= 0:
                errors.append(f"sweep m={row['m']}: non-positive build time")
            if row["snapshot_load_seconds"] <= 0:
                errors.append(
                    f"sweep m={row['m']}: non-positive snapshot load time"
                )
            # The exhaustive reference may be skipped (0) above the headline
            # M, but a measured reference must come with its speedup.
            if row["build_reference_seconds"] > 0 and row["build_speedup"] <= 0:
                errors.append(
                    f"sweep m={row['m']}: reference measured but no "
                    "build_speedup"
                )
        if v3:
            if not (1 <= row["adaptive_nprobe_min"]
                    <= row["adaptive_nprobe_max"] <= row["clusters"]):
                errors.append(
                    f"sweep m={row['m']}: adaptive bounds violate "
                    "1 <= min <= max <= clusters"
                )
            if not (row["adaptive_nprobe_min"] <= row["mean_probes"]
                    <= row["adaptive_nprobe_max"]):
                errors.append(
                    f"sweep m={row['m']}: mean_probes outside "
                    "[adaptive_nprobe_min, adaptive_nprobe_max]"
                )
            if not 0.0 <= row["adaptive_recall_at_1"] <= 1.0:
                errors.append(
                    f"sweep m={row['m']}: adaptive_recall_at_1 out of [0, 1]"
                )
        if v4:
            sweep_entries = row["shard_sweep"]
            if not isinstance(sweep_entries, list) or not sweep_entries:
                errors.append(f"sweep m={row['m']}: empty shard_sweep")
                sweep_entries = []
            prev_shards = 0
            for entry in sweep_entries:
                missing = [f for f in SHARD_ENTRY_FIELDS if f not in entry]
                if missing:
                    errors.append(
                        f"sweep m={row['m']}: shard_sweep entry missing "
                        f"fields {missing}"
                    )
                    continue
                if entry["shards"] <= prev_shards:
                    errors.append(
                        f"sweep m={row['m']}: shard_sweep counts not "
                        "strictly ascending"
                    )
                prev_shards = entry["shards"]
                if entry["sharded_us_per_query"] <= 0:
                    errors.append(
                        f"sweep m={row['m']} shards={entry['shards']}: "
                        "non-positive sharded_us_per_query"
                    )
                if entry["speedup"] <= 0:
                    errors.append(
                        f"sweep m={row['m']} shards={entry['shards']}: "
                        "non-positive speedup"
                    )
                if not 0.0 <= entry["recall_at_1"] <= 1.0:
                    errors.append(
                        f"sweep m={row['m']} shards={entry['shards']}: "
                        "recall_at_1 out of [0, 1]"
                    )
    head = doc.get("headline") or {}
    if sweep and all("m" in r for r in sweep):
        last = sweep[-1]
        mirror = ("m", "speedup", "recall_at_1")
        if v2:
            mirror += ("snapshot_load_seconds",)
        for field in mirror:
            if head.get(field) != last.get(field):
                errors.append(
                    f"headline.{field} does not mirror the largest-M row"
                )
        if v4:
            shard4 = next(
                (e for e in last.get("shard_sweep") or []
                 if e.get("shards") == SHARD_ACCEPTANCE_COUNT),
                None,
            )
            if shard4 is not None and head.get("shard_speedup") != shard4.get(
                    "speedup"):
                errors.append(
                    "headline.shard_speedup does not mirror the largest-M "
                    f"{SHARD_ACCEPTANCE_COUNT}-shard entry"
                )
    # Full-mode baselines carry the tracked acceptance bounds (ISSUE 5/6):
    # the M=262144 row must show >= 5x scan speedup at recall@1 >= 0.99 —
    # and, in v2, a >= 4x build speedup plus a sub-second snapshot load at
    # the largest M — so a regenerated BENCH_scale.json cannot silently
    # regress below them.
    if doc.get("mode") == "full":
        accept = next(
            (r for r in sweep if r.get("m") == 262144
             and not [f for f in row_fields if f not in r]),
            None,
        )
        if accept is None:
            errors.append("full-mode sweep lacks the M=262144 acceptance row")
        else:
            if accept["speedup"] < 5.0:
                errors.append(
                    f"acceptance row m=262144: speedup {accept['speedup']} "
                    "< 5.0"
                )
            if accept["recall_at_1"] < 0.99:
                errors.append(
                    f"acceptance row m=262144: recall_at_1 "
                    f"{accept['recall_at_1']} < 0.99"
                )
            if v2 and accept["build_speedup"] < MIN_BUILD_SPEEDUP:
                errors.append(
                    f"acceptance row m=262144: build_speedup "
                    f"{accept['build_speedup']} < {MIN_BUILD_SPEEDUP}"
                )
            if v3:
                if accept["adaptive_recall_at_1"] < MIN_ADAPTIVE_RECALL:
                    errors.append(
                        f"acceptance row m=262144: adaptive_recall_at_1 "
                        f"{accept['adaptive_recall_at_1']} < "
                        f"{MIN_ADAPTIVE_RECALL}"
                    )
                probe_bound = (
                    MAX_MEAN_PROBE_FRACTION * accept["clusters"] / 16.0
                )
                if accept["mean_probes"] > probe_bound:
                    errors.append(
                        f"acceptance row m=262144: mean_probes "
                        f"{accept['mean_probes']} > {probe_bound} "
                        f"(= {MAX_MEAN_PROBE_FRACTION} * clusters / 16)"
                    )
        if v4 and sweep:
            last = sweep[-1]
            shard4 = next(
                (e for e in last.get("shard_sweep") or []
                 if e.get("shards") == SHARD_ACCEPTANCE_COUNT),
                None,
            )
            if shard4 is None:
                errors.append(
                    f"largest-M row m={last.get('m')}: shard_sweep lacks "
                    f"the {SHARD_ACCEPTANCE_COUNT}-shard acceptance entry"
                )
            else:
                if shard4["speedup"] < MIN_SHARD_SPEEDUP:
                    errors.append(
                        f"largest-M row m={last.get('m')} shards="
                        f"{SHARD_ACCEPTANCE_COUNT}: speedup "
                        f"{shard4['speedup']} < {MIN_SHARD_SPEEDUP}"
                    )
                if shard4["recall_at_1"] < MIN_SHARD_RECALL:
                    errors.append(
                        f"largest-M row m={last.get('m')} shards="
                        f"{SHARD_ACCEPTANCE_COUNT}: recall_at_1 "
                        f"{shard4['recall_at_1']} < {MIN_SHARD_RECALL}"
                    )
        if v2 and sweep:
            last = sweep[-1]
            if last.get("snapshot_load_seconds", 0) >= MAX_SNAPSHOT_LOAD_SECONDS:
                errors.append(
                    f"largest-M row m={last.get('m')}: snapshot_load_seconds "
                    f"{last.get('snapshot_load_seconds')} >= "
                    f"{MAX_SNAPSHOT_LOAD_SECONDS}"
                )
    return errors


SERVICE_ROW_FIELDS = (
    "name", "seconds", "requests_per_second", "p50_us", "p99_us", "p999_us",
    "mean_batch", "hits_plus_coalesced",
)
SERVICE_OVERHEAD_FIELDS = (
    "baseline_rps", "sampled_rps", "ratio", "sample_every",
)
# Full-mode observability acceptance (ISSUE 9): the batch=64 configuration
# with 1-in-64 sampled tracing must keep at least this fraction of the
# tracing-off throughput (<= 3% overhead).
MIN_TRACE_OVERHEAD_RATIO = 0.97


def validate_service(doc, schema=SERVICE_SCHEMA):
    """Returns a list of bench_service v1 violations (empty = valid)."""
    errors = []
    if doc.get("schema") != schema:
        errors.append(f"schema is {doc.get('schema')!r}, expected {schema!r}")
    if doc.get("mode") not in ("full", "smoke"):
        errors.append(f"mode is {doc.get('mode')!r}")
    ctx = doc.get("context", {})
    for field in ("dim", "items", "producers", "requests", "window", "seed"):
        if field not in ctx:
            errors.append(f"context.{field} missing")
    if ctx.get("simd_level") not in KNOWN_LEVELS:
        errors.append(f"context.simd_level is {ctx.get('simd_level')!r}")
    rows = doc.get("rows") or []
    if not rows:
        errors.append("no rows recorded")
    names = set()
    for row in rows:
        missing = [f for f in SERVICE_ROW_FIELDS if f not in row]
        if missing:
            errors.append(f"row {row.get('name')!r}: missing fields {missing}")
            continue
        if row["name"] in names:
            errors.append(f"row {row['name']!r}: duplicate name")
        names.add(row["name"])
        if row["requests_per_second"] <= 0:
            errors.append(f"row {row['name']!r}: non-positive throughput")
        if not 0 <= row["p50_us"] <= row["p99_us"] <= row["p999_us"]:
            errors.append(
                f"row {row['name']!r}: quantiles violate p50 <= p99 <= p99.9"
            )
    for name in ("engine nobatch", "engine batch=64", "engine batch=64 traced"):
        if name not in names:
            errors.append(f"rows lack the {name!r} configuration")
    overhead = doc.get("overhead") or {}
    missing = [f for f in SERVICE_OVERHEAD_FIELDS if f not in overhead]
    if missing:
        errors.append(f"overhead block missing fields {missing}")
    elif overhead["baseline_rps"] <= 0 or overhead["sampled_rps"] <= 0:
        errors.append("overhead block has non-positive throughput")
    # The acceptance bound binds only committed full-mode baselines — smoke
    # runs are far too short for a stable throughput ratio.
    elif doc.get("mode") == "full" and (
            overhead["ratio"] < MIN_TRACE_OVERHEAD_RATIO):
        errors.append(
            f"overhead.ratio {overhead['ratio']} < {MIN_TRACE_OVERHEAD_RATIO}"
            f" (sampled tracing costs > "
            f"{round((1 - MIN_TRACE_OVERHEAD_RATIO) * 100)}% throughput)"
        )
    return errors


LATENCY_ROW_FIELDS = (
    "name", "multiplier", "offered_rps", "seconds", "sent", "results",
    "overloads", "errors", "timeouts", "goodput_rps", "p50_us", "p99_us",
    "p999_us",
)
LATENCY_CONTEXT_FIELDS = (
    "dim", "items", "requests_per_row", "saturation_rps", "hot_fraction",
    "admission_depth", "client_quota", "seed",
)
# Full-mode tail-latency acceptance (ISSUE 10): below saturation (the 0.5x
# row) the tail must stay bounded — p99 at most this multiple of p50 ...
MAX_TAIL_RATIO = 10.0
TAIL_ACCEPTANCE_MULTIPLIER = 0.5
# ... and at this overload multiple the excess must be shed by explicit
# kOverload rejects, never by timeouts.
OVERLOAD_ACCEPTANCE_MULTIPLIER = 4.0


def validate_latency(doc, schema=LATENCY_SCHEMA):
    """Returns a list of bench_latency v1 violations (empty = valid)."""
    errors = []
    if doc.get("schema") != schema:
        errors.append(f"schema is {doc.get('schema')!r}, expected {schema!r}")
    if doc.get("mode") not in ("full", "smoke"):
        errors.append(f"mode is {doc.get('mode')!r}")
    ctx = doc.get("context", {})
    for field in LATENCY_CONTEXT_FIELDS:
        if field not in ctx:
            errors.append(f"context.{field} missing")
    if ctx.get("simd_level") not in KNOWN_LEVELS:
        errors.append(f"context.simd_level is {ctx.get('simd_level')!r}")
    if ctx.get("saturation_rps", 0) <= 0:
        errors.append("context.saturation_rps is non-positive")
    rows = doc.get("rows") or []
    if not rows:
        errors.append("no rows recorded")
    prev_mult = 0.0
    by_mult = {}
    for row in rows:
        missing = [f for f in LATENCY_ROW_FIELDS if f not in row]
        if missing:
            errors.append(f"row {row.get('name')!r}: missing fields {missing}")
            continue
        name = row["name"]
        if row["multiplier"] <= prev_mult:
            errors.append(f"row {name!r}: multipliers not strictly ascending")
        prev_mult = row["multiplier"]
        by_mult[row["multiplier"]] = row
        accounted = (row["results"] + row["overloads"] + row["errors"]
                     + row["timeouts"])
        if accounted != row["sent"]:
            errors.append(
                f"row {name!r}: sent {row['sent']} != results+overloads+"
                f"errors+timeouts ({accounted})"
            )
        if row["results"] > 0:
            if not 0 < row["p50_us"] <= row["p99_us"] <= row["p999_us"]:
                errors.append(
                    f"row {name!r}: quantiles violate 0 < p50 <= p99 <= p99.9"
                )
            if row["goodput_rps"] <= 0:
                errors.append(f"row {name!r}: results but no goodput")
        if row["offered_rps"] <= 0:
            errors.append(f"row {name!r}: non-positive offered_rps")
    for mult in (TAIL_ACCEPTANCE_MULTIPLIER, OVERLOAD_ACCEPTANCE_MULTIPLIER):
        if mult not in by_mult:
            errors.append(f"rows lack the {mult}x load point")
    # The acceptance bounds bind only committed full-mode baselines — smoke
    # sweeps are far too short for stable quantiles.
    if doc.get("mode") == "full":
        tail = by_mult.get(TAIL_ACCEPTANCE_MULTIPLIER)
        if tail and tail.get("results"):
            if tail["p99_us"] > MAX_TAIL_RATIO * tail["p50_us"]:
                errors.append(
                    f"{TAIL_ACCEPTANCE_MULTIPLIER}x row: p99 "
                    f"{tail['p99_us']}us > {MAX_TAIL_RATIO} * p50 "
                    f"{tail['p50_us']}us (tail bound)"
                )
        elif tail:
            errors.append(
                f"{TAIL_ACCEPTANCE_MULTIPLIER}x row recorded no results"
            )
        over = by_mult.get(OVERLOAD_ACCEPTANCE_MULTIPLIER)
        if over is not None:
            if over["timeouts"] != 0:
                errors.append(
                    f"{OVERLOAD_ACCEPTANCE_MULTIPLIER}x row: "
                    f"{over['timeouts']} timeouts (overload must be shed by "
                    "explicit rejects)"
                )
            if over["overloads"] < 1:
                errors.append(
                    f"{OVERLOAD_ACCEPTANCE_MULTIPLIER}x row: no overload "
                    "rejects recorded"
                )
    return errors


def run_check(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") in (SCALE_SCHEMA, SCALE_SCHEMA_V2, SCALE_SCHEMA_V3,
                             SCALE_SCHEMA_V4):
        kind = doc["schema"]
        errors = validate_scale(doc, kind)
    elif doc.get("schema") == SERVICE_SCHEMA:
        kind = SERVICE_SCHEMA
        errors = validate_service(doc, kind)
    elif doc.get("schema") == LATENCY_SCHEMA:
        kind = LATENCY_SCHEMA
        errors = validate_latency(doc, kind)
    else:
        kind = SCHEMA_V2 if doc.get("schema") == SCHEMA_V2 else SCHEMA
        errors = validate(doc, kind)
    if errors:
        for e in errors:
            print(f"bench_json.py: {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if kind == LATENCY_SCHEMA:
        rows = doc["rows"]
        tail = next(
            (r for r in rows
             if r.get("multiplier") == TAIL_ACCEPTANCE_MULTIPLIER), {})
        over = next(
            (r for r in rows
             if r.get("multiplier") == OVERLOAD_ACCEPTANCE_MULTIPLIER), {})
        print(
            f"{path}: schema {kind} OK ({len(rows)} rows, saturation "
            f"{doc['context']['saturation_rps']} req/s, 0.5x p50/p99 "
            f"{tail.get('p50_us')}/{tail.get('p99_us')}us, 4x rejects "
            f"{over.get('overloads')} timeouts {over.get('timeouts')}, "
            f"simd_level={doc['context']['simd_level']})"
        )
    elif kind == SERVICE_SCHEMA:
        overhead = doc["overhead"]
        print(
            f"{path}: schema {kind} OK ({len(doc['rows'])} rows, tracing "
            f"overhead ratio {overhead['ratio']} at 1-in-"
            f"{overhead['sample_every']}, "
            f"simd_level={doc['context']['simd_level']})"
        )
    elif kind in (SCALE_SCHEMA, SCALE_SCHEMA_V2, SCALE_SCHEMA_V3,
                  SCALE_SCHEMA_V4):
        head = doc["headline"]
        build = (
            f" build_speedup={head['build_speedup']}x"
            f" snapshot_load={head['snapshot_load_seconds']}s"
            if kind in (SCALE_SCHEMA_V2, SCALE_SCHEMA_V3, SCALE_SCHEMA_V4)
            else ""
        )
        adaptive = ""
        if kind in (SCALE_SCHEMA_V3, SCALE_SCHEMA_V4):
            last = doc["sweep"][-1]
            adaptive = (
                f" mean_probes={last['mean_probes']}"
                f" adaptive_recall@1={last['adaptive_recall_at_1']}"
            )
        if kind == SCALE_SCHEMA_V4:
            adaptive += f" shard_speedup={head['shard_speedup']}x"
        print(
            f"{path}: schema {kind} OK ({len(doc['sweep'])} rows, headline "
            f"m={head['m']} speedup={head['speedup']}x "
            f"recall@1={head['recall_at_1']}{build}{adaptive}, "
            f"simd_level={doc['context']['simd_level']})"
        )
    else:
        blocks = doc.get("block_speedup") or {}
        block = f", {len(blocks)} block speedups" if kind == SCHEMA else ""
        print(
            f"{path}: schema {kind} OK "
            f"({len(doc['benchmarks'])} rows, {len(doc['speedup'])} speedups"
            f"{block}, simd_level={doc['context']['simd_level']})"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--raw", help="google-benchmark JSON file")
    ap.add_argument("--out", help="output BENCH_kernels.json")
    ap.add_argument("--mode", default="full", choices=["full", "smoke"])
    ap.add_argument(
        "--build-type",
        default=None,
        help="CMAKE_BUILD_TYPE of the benchmarked binary (provenance)",
    )
    ap.add_argument(
        "--check",
        metavar="FILE",
        help="validate FILE against its declared schema (bench_kernels.v2/"
        "v3 or bench_scale.v1/v2/v3) and exit (no conversion)",
    )
    args = ap.parse_args()

    if args.check:
        run_check(args.check)
        return

    if not args.raw or not args.out:
        ap.error("--raw and --out are required unless --check is given")

    with open(args.raw, encoding="utf-8") as f:
        raw = json.load(f)

    ctx = raw.get("context", {})
    dispatched = ctx.get("factorhd_simd_level")
    if dispatched not in KNOWN_LEVELS:
        sys.exit(
            "bench_json.py: raw context lacks factorhd_simd_level "
            "(bench_kernels too old for the v2 schema?)"
        )

    benchmarks = parse_benchmarks(raw, dispatched)
    if not benchmarks:
        sys.exit("bench_json.py: no BM_Scan* benchmarks in the raw output")

    doc = {
        "schema": SCHEMA,
        "mode": args.mode,
        "context": {
            "date": ctx.get("date"),
            "host_name": ctx.get("host_name"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
            # The benchmark *library*'s build type, not this repo's.
            "library_build_type": ctx.get("library_build_type"),
            # CMAKE_BUILD_TYPE of the benchmarked bench_kernels binary.
            "cmake_build_type": args.build_type,
            # SIMD tier the dispatched (kPacked/kAuto) rows executed at, and
            # the CPU's best tier (they differ only under FACTORHD_SIMD).
            "simd_level": dispatched,
            "simd_detected": ctx.get("factorhd_simd_detected"),
        },
        "benchmarks": benchmarks,
        "speedup": compute_speedups(benchmarks),
        "block_speedup": compute_block_speedups(benchmarks),
    }

    errors = validate(doc)
    if errors:
        for e in errors:
            print(f"bench_json.py: emitted doc invalid: {e}", file=sys.stderr)
        sys.exit(1)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
