#!/usr/bin/env python3
"""Convert Google Benchmark JSON output into BENCH_kernels.json.

Reads the raw ``--benchmark_format=json`` output of bench_kernels (BM_Scan*
entries), pairs each packed benchmark with its scalar twin at the same
(M, D), and emits the repo's perf-baseline schema (see README "Kernel
benchmarks"):

    {
      "schema": "factorhd.bench_kernels.v1",
      "mode": "full" | "smoke",
      "context": {...},                  # machine/build provenance
      "benchmarks": [{"name", "kernel", "backend", "m", "d",
                      "real_time_ns", "cpu_time_ns", "items_per_second"}],
      "speedup": {"scan_best/m64/d8192": 5.3, ...}   # scalar_cpu / packed_cpu
    }

Only Python stdlib is used.
"""

import argparse
import json
import re
import sys

# BM_ScanBestScalar/64/8192 -> kernel "scan_best", backend "scalar", m, d.
NAME_RE = re.compile(
    r"^BM_Scan(?P<kernel>Best|Dots)(?P<backend>Scalar|Packed)/(?P<m>\d+)/(?P<d>\d+)$"
)


def parse_benchmarks(raw):
    out = []
    for b in raw.get("benchmarks", []):
        match = NAME_RE.match(b.get("name", ""))
        if not match or b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out.append(
            {
                "name": b["name"],
                "kernel": "scan_" + match.group("kernel").lower(),
                "backend": match.group("backend").lower(),
                "m": int(match.group("m")),
                "d": int(match.group("d")),
                "real_time_ns": b["real_time"] * scale,
                "cpu_time_ns": b["cpu_time"] * scale,
                "items_per_second": b.get("items_per_second"),
            }
        )
    return out


def compute_speedups(benchmarks):
    by_point = {}
    for b in benchmarks:
        by_point.setdefault((b["kernel"], b["m"], b["d"]), {})[b["backend"]] = b
    speedups = {}
    for (kernel, m, d), backends in sorted(by_point.items()):
        if "scalar" in backends and "packed" in backends:
            packed = backends["packed"]["cpu_time_ns"]
            if packed > 0:
                key = f"{kernel}/m{m}/d{d}"
                speedups[key] = round(
                    backends["scalar"]["cpu_time_ns"] / packed, 3
                )
    return speedups


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--raw", required=True, help="google-benchmark JSON file")
    ap.add_argument("--out", required=True, help="output BENCH_kernels.json")
    ap.add_argument("--mode", default="full", choices=["full", "smoke"])
    ap.add_argument(
        "--build-type",
        default=None,
        help="CMAKE_BUILD_TYPE of the benchmarked binary (provenance)",
    )
    args = ap.parse_args()

    with open(args.raw, encoding="utf-8") as f:
        raw = json.load(f)

    benchmarks = parse_benchmarks(raw)
    if not benchmarks:
        sys.exit("bench_json.py: no BM_Scan* benchmarks in the raw output")

    ctx = raw.get("context", {})
    doc = {
        "schema": "factorhd.bench_kernels.v1",
        "mode": args.mode,
        "context": {
            "date": ctx.get("date"),
            "host_name": ctx.get("host_name"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
            # The benchmark *library*'s build type, not this repo's.
            "library_build_type": ctx.get("library_build_type"),
            # CMAKE_BUILD_TYPE of the benchmarked bench_kernels binary.
            "cmake_build_type": args.build_type,
        },
        "benchmarks": benchmarks,
        "speedup": compute_speedups(benchmarks),
    }

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
