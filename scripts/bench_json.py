#!/usr/bin/env python3
"""Convert Google Benchmark JSON output into BENCH_kernels.json (schema v2).

Reads the raw ``--benchmark_format=json`` output of bench_kernels (BM_Scan*
entries), pairs each packed benchmark with its scalar twin at the same
(M, D), and emits the repo's perf-baseline schema (see README "Kernel
benchmarks"):

    {
      "schema": "factorhd.bench_kernels.v2",
      "mode": "full" | "smoke",
      "context": {...,                    # machine/build provenance
                  "simd_level": "avx512", # tier kPacked scans dispatched to
                  "simd_detected": "avx512"},
      "benchmarks": [{"name", "kernel", "backend", "level", "m", "d",
                      "real_time_ns", "cpu_time_ns", "items_per_second"}],
      "speedup": {
        "scan_best/m64/d8192": 15.0,          # scalar_cpu / dispatched packed
        "scan_best/m64/d8192/avx2": 8.1, ...  # scalar_cpu / forced-tier cpu
      }
    }

`level` is the SIMD tier a row executed at: null for the scalar int32
backend, the forced tier for BM_Scan*Packed{Words,AVX2,AVX512,NEON} rows,
and the context's dispatched tier for plain BM_Scan*Packed rows.

``--check FILE`` validates an emitted file and exits non-zero on
violations — the CI hook keeping the emitters and these schemas in
lockstep. The file's own ``schema`` field selects the validator:

* ``factorhd.bench_kernels.v2`` — the Google-Benchmark conversion above;
* ``factorhd.bench_scale.v1`` — the tiered-scan M-sweep written directly
  by ``bench_ext_scale --json`` (context with dim/queries/flip_rate/seed/
  SIMD tiers; one sweep row per codebook size M with clusters, nprobe,
  per-query times, speedup, recall@1, and similarity-op counts; a
  ``headline`` block mirroring the largest-M row — the ISSUE 5 acceptance
  surface). Accepted for older baselines; current emitters write v2.
* ``factorhd.bench_scale.v2`` — v1 plus the ISSUE 6 build/persistence
  columns per row: ``build_seconds`` (default screened/pooled build),
  ``build_reference_seconds`` (single-threaded exhaustive build; 0 when
  skipped above the headline M), ``build_speedup`` (reference/default),
  and ``snapshot_load_seconds`` (FTS1 file round-trip load). Full-mode
  baselines must show build_speedup >= 4.0 on the M=262144 row and a
  sub-second snapshot load on the largest-M row (committed as
  BENCH_scale.json).

Only Python stdlib is used.
"""

import argparse
import json
import re
import sys

# BM_ScanBestPackedAVX2/64/8192 -> kernel "scan_best", backend "packed",
# level "avx2", m, d. The level suffix is absent on scalar and
# dispatched-packed rows.
NAME_RE = re.compile(
    r"^BM_Scan(?P<kernel>Best|Dots)(?P<backend>Scalar|Packed)"
    r"(?P<level>Words|AVX2|AVX512|NEON)?/(?P<m>\d+)/(?P<d>\d+)$"
)

# Benchmark-name level suffix -> canonical SimdLevel name (simd.hpp).
LEVEL_NAMES = {"Words": "scalar", "AVX2": "avx2", "AVX512": "avx512",
               "NEON": "neon"}
KNOWN_LEVELS = set(LEVEL_NAMES.values())

SCHEMA = "factorhd.bench_kernels.v2"
SCALE_SCHEMA = "factorhd.bench_scale.v1"
SCALE_SCHEMA_V2 = "factorhd.bench_scale.v2"


def parse_benchmarks(raw, dispatched_level):
    out = []
    for b in raw.get("benchmarks", []):
        match = NAME_RE.match(b.get("name", ""))
        if not match or b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        backend = match.group("backend").lower()
        suffix = match.group("level")
        if backend == "scalar":
            level = None  # int32 loops: no plane tier at all
        elif suffix is not None:
            level = LEVEL_NAMES[suffix]
        else:
            level = dispatched_level
        out.append(
            {
                "name": b["name"],
                "kernel": "scan_" + match.group("kernel").lower(),
                "backend": backend,
                "level": level,
                # Forced-tier row (False for the dispatched kPacked pair the
                # perf trajectory tracks).
                "forced": suffix is not None,
                "m": int(match.group("m")),
                "d": int(match.group("d")),
                "real_time_ns": b["real_time"] * scale,
                "cpu_time_ns": b["cpu_time"] * scale,
                "items_per_second": b.get("items_per_second"),
            }
        )
    return out


def speedup_slot(b):
    """Per-point slot of a row in the speedup table: the scalar int32
    reference, the dispatched packed pair, or a forced tier ("words" for the
    forced scalar-word tier, so it cannot collide with the int32 slot)."""
    if b.get("backend") == "scalar":
        return "int32"
    if not b.get("forced"):
        return "packed"
    return "words" if b.get("level") == "scalar" else b.get("level")


def compute_speedups(benchmarks):
    """scalar_cpu / packed_cpu per (kernel, m, d): the dispatched pair under
    the bare key (the perf-trajectory headline), each forced tier under
    key/<words|avx2|avx512|neon>."""
    by_point = {}
    for b in benchmarks:
        by_point.setdefault((b["kernel"], b["m"], b["d"]), {})[
            speedup_slot(b)] = b
    speedups = {}
    for (kernel, m, d), slots in sorted(by_point.items()):
        scalar = slots.get("int32")
        if scalar is None:
            continue
        for slot, b in sorted(slots.items()):
            if slot == "int32" or b["cpu_time_ns"] <= 0:
                continue
            key = f"{kernel}/m{m}/d{d}"
            if slot != "packed":
                key += f"/{slot}"
            speedups[key] = round(scalar["cpu_time_ns"] / b["cpu_time_ns"], 3)
    return speedups


def validate(doc):
    """Returns a list of v2-schema violations (empty = valid)."""
    errors = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("mode") not in ("full", "smoke"):
        errors.append(f"mode is {doc.get('mode')!r}")
    ctx = doc.get("context", {})
    if ctx.get("simd_level") not in KNOWN_LEVELS:
        errors.append(f"context.simd_level is {ctx.get('simd_level')!r}")
    if ctx.get("simd_detected") not in KNOWN_LEVELS:
        errors.append(f"context.simd_detected is {ctx.get('simd_detected')!r}")
    benchmarks = doc.get("benchmarks") or []
    if not benchmarks:
        errors.append("no benchmarks recorded")
    well_formed = []
    for b in benchmarks:
        missing = [k for k in ("kernel", "backend", "level", "forced", "m",
                               "d") if k not in b]
        if missing:
            errors.append(f"{b.get('name')}: missing fields {missing}")
            continue
        if b["backend"] == "scalar":
            if b["level"] is not None:
                errors.append(f"{b.get('name')}: scalar row with level")
        elif b["level"] not in KNOWN_LEVELS:
            errors.append(f"{b.get('name')}: bad level {b['level']!r}")
        well_formed.append(b)
    speedups = doc.get("speedup") or {}
    if not speedups:
        errors.append("no speedups recorded")
    # Every dispatched packed point must have its headline speedup, and every
    # forced tier measured must appear under a per-level key.
    for b in well_formed:
        if b["backend"] != "packed":
            continue
        key = f"{b['kernel']}/m{b['m']}/d{b['d']}"
        slot = speedup_slot(b)
        if slot != "packed":
            key += f"/{slot}"
        if key not in speedups:
            errors.append(f"missing speedup entry {key!r}")
    return errors


SCALE_ROW_FIELDS_V1 = (
    "m", "clusters", "nprobe", "build_ms", "exact_us_per_query",
    "tiered_us_per_query", "speedup", "recall_at_1", "exact_sim_ops",
    "tiered_sim_ops",
)

# v2 renames build_ms -> build_seconds and adds the ISSUE 6 build /
# persistence measurements.
SCALE_ROW_FIELDS_V2 = (
    "m", "clusters", "nprobe", "build_seconds", "build_reference_seconds",
    "build_speedup", "snapshot_load_seconds", "exact_us_per_query",
    "tiered_us_per_query", "speedup", "recall_at_1", "exact_sim_ops",
    "tiered_sim_ops",
)

# The M=262144 acceptance row of full-mode baselines must show at least
# this build speedup (screened/pooled build vs the exhaustive
# single-threaded reference) ...
MIN_BUILD_SPEEDUP = 4.0
# ... and the largest-M row must load its snapshot in under a second.
MAX_SNAPSHOT_LOAD_SECONDS = 1.0


def validate_scale(doc, schema=SCALE_SCHEMA):
    """Returns a list of bench_scale v1/v2 violations (empty = valid)."""
    v2 = schema == SCALE_SCHEMA_V2
    row_fields = SCALE_ROW_FIELDS_V2 if v2 else SCALE_ROW_FIELDS_V1
    errors = []
    if doc.get("schema") != schema:
        errors.append(
            f"schema is {doc.get('schema')!r}, expected {schema!r}"
        )
    if doc.get("mode") not in ("full", "smoke"):
        errors.append(f"mode is {doc.get('mode')!r}")
    ctx = doc.get("context", {})
    for field in ("dim", "queries", "flip_rate", "seed"):
        if field not in ctx:
            errors.append(f"context.{field} missing")
    if ctx.get("simd_level") not in KNOWN_LEVELS:
        errors.append(f"context.simd_level is {ctx.get('simd_level')!r}")
    if ctx.get("simd_detected") not in KNOWN_LEVELS:
        errors.append(f"context.simd_detected is {ctx.get('simd_detected')!r}")
    sweep = doc.get("sweep") or []
    if not sweep:
        errors.append("no sweep rows recorded")
    prev_m = 0
    for row in sweep:
        missing = [f for f in row_fields if f not in row]
        if missing:
            errors.append(f"sweep m={row.get('m')}: missing fields {missing}")
            continue
        if row["m"] <= prev_m:
            errors.append(f"sweep m={row['m']}: rows not strictly ascending")
        prev_m = row["m"]
        if not 0.0 <= row["recall_at_1"] <= 1.0:
            errors.append(f"sweep m={row['m']}: recall_at_1 out of [0, 1]")
        if row["speedup"] <= 0:
            errors.append(f"sweep m={row['m']}: non-positive speedup")
        if not 1 <= row["nprobe"] <= row["clusters"]:
            errors.append(f"sweep m={row['m']}: nprobe outside [1, clusters]")
        if row["tiered_sim_ops"] > row["exact_sim_ops"]:
            errors.append(
                f"sweep m={row['m']}: tiered scans more rows than exact"
            )
        if v2:
            if row["build_seconds"] <= 0:
                errors.append(f"sweep m={row['m']}: non-positive build time")
            if row["snapshot_load_seconds"] <= 0:
                errors.append(
                    f"sweep m={row['m']}: non-positive snapshot load time"
                )
            # The exhaustive reference may be skipped (0) above the headline
            # M, but a measured reference must come with its speedup.
            if row["build_reference_seconds"] > 0 and row["build_speedup"] <= 0:
                errors.append(
                    f"sweep m={row['m']}: reference measured but no "
                    "build_speedup"
                )
    head = doc.get("headline") or {}
    if sweep and all("m" in r for r in sweep):
        last = sweep[-1]
        mirror = ("m", "speedup", "recall_at_1")
        if v2:
            mirror += ("snapshot_load_seconds",)
        for field in mirror:
            if head.get(field) != last.get(field):
                errors.append(
                    f"headline.{field} does not mirror the largest-M row"
                )
    # Full-mode baselines carry the tracked acceptance bounds (ISSUE 5/6):
    # the M=262144 row must show >= 5x scan speedup at recall@1 >= 0.99 —
    # and, in v2, a >= 4x build speedup plus a sub-second snapshot load at
    # the largest M — so a regenerated BENCH_scale.json cannot silently
    # regress below them.
    if doc.get("mode") == "full":
        accept = next(
            (r for r in sweep if r.get("m") == 262144
             and not [f for f in row_fields if f not in r]),
            None,
        )
        if accept is None:
            errors.append("full-mode sweep lacks the M=262144 acceptance row")
        else:
            if accept["speedup"] < 5.0:
                errors.append(
                    f"acceptance row m=262144: speedup {accept['speedup']} "
                    "< 5.0"
                )
            if accept["recall_at_1"] < 0.99:
                errors.append(
                    f"acceptance row m=262144: recall_at_1 "
                    f"{accept['recall_at_1']} < 0.99"
                )
            if v2 and accept["build_speedup"] < MIN_BUILD_SPEEDUP:
                errors.append(
                    f"acceptance row m=262144: build_speedup "
                    f"{accept['build_speedup']} < {MIN_BUILD_SPEEDUP}"
                )
        if v2 and sweep:
            last = sweep[-1]
            if last.get("snapshot_load_seconds", 0) >= MAX_SNAPSHOT_LOAD_SECONDS:
                errors.append(
                    f"largest-M row m={last.get('m')}: snapshot_load_seconds "
                    f"{last.get('snapshot_load_seconds')} >= "
                    f"{MAX_SNAPSHOT_LOAD_SECONDS}"
                )
    return errors


def run_check(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") in (SCALE_SCHEMA, SCALE_SCHEMA_V2):
        kind = doc["schema"]
        errors = validate_scale(doc, kind)
    else:
        errors, kind = validate(doc), SCHEMA
    if errors:
        for e in errors:
            print(f"bench_json.py: {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if kind in (SCALE_SCHEMA, SCALE_SCHEMA_V2):
        head = doc["headline"]
        build = (
            f" build_speedup={head['build_speedup']}x"
            f" snapshot_load={head['snapshot_load_seconds']}s"
            if kind == SCALE_SCHEMA_V2
            else ""
        )
        print(
            f"{path}: schema {kind} OK ({len(doc['sweep'])} rows, headline "
            f"m={head['m']} speedup={head['speedup']}x "
            f"recall@1={head['recall_at_1']}{build}, "
            f"simd_level={doc['context']['simd_level']})"
        )
    else:
        print(
            f"{path}: schema {kind} OK "
            f"({len(doc['benchmarks'])} rows, {len(doc['speedup'])} speedups, "
            f"simd_level={doc['context']['simd_level']})"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--raw", help="google-benchmark JSON file")
    ap.add_argument("--out", help="output BENCH_kernels.json")
    ap.add_argument("--mode", default="full", choices=["full", "smoke"])
    ap.add_argument(
        "--build-type",
        default=None,
        help="CMAKE_BUILD_TYPE of the benchmarked binary (provenance)",
    )
    ap.add_argument(
        "--check",
        metavar="FILE",
        help="validate FILE against its declared schema (bench_kernels.v2 "
        "or bench_scale.v1) and exit (no conversion)",
    )
    args = ap.parse_args()

    if args.check:
        run_check(args.check)
        return

    if not args.raw or not args.out:
        ap.error("--raw and --out are required unless --check is given")

    with open(args.raw, encoding="utf-8") as f:
        raw = json.load(f)

    ctx = raw.get("context", {})
    dispatched = ctx.get("factorhd_simd_level")
    if dispatched not in KNOWN_LEVELS:
        sys.exit(
            "bench_json.py: raw context lacks factorhd_simd_level "
            "(bench_kernels too old for the v2 schema?)"
        )

    benchmarks = parse_benchmarks(raw, dispatched)
    if not benchmarks:
        sys.exit("bench_json.py: no BM_Scan* benchmarks in the raw output")

    doc = {
        "schema": SCHEMA,
        "mode": args.mode,
        "context": {
            "date": ctx.get("date"),
            "host_name": ctx.get("host_name"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
            # The benchmark *library*'s build type, not this repo's.
            "library_build_type": ctx.get("library_build_type"),
            # CMAKE_BUILD_TYPE of the benchmarked bench_kernels binary.
            "cmake_build_type": args.build_type,
            # SIMD tier the dispatched (kPacked/kAuto) rows executed at, and
            # the CPU's best tier (they differ only under FACTORHD_SIMD).
            "simd_level": dispatched,
            "simd_detected": ctx.get("factorhd_simd_detected"),
        },
        "benchmarks": benchmarks,
        "speedup": compute_speedups(benchmarks),
    }

    errors = validate(doc)
    if errors:
        for e in errors:
            print(f"bench_json.py: emitted doc invalid: {e}", file=sys.stderr)
        sys.exit(1)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
