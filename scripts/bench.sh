#!/usr/bin/env bash
# Kernel-benchmark runner: executes the BM_Scan* scalar-vs-packed pairs in
# bench_kernels and emits the machine-readable BENCH_kernels.json perf
# baseline (schema documented in README "Kernel benchmarks").
#
# Usage:
#   scripts/bench.sh            # full sweep (M=64, D up to 8192) -> BENCH_kernels.json
#   scripts/bench.sh --smoke    # tiny dims, short runtime; keeps the JSON
#                               # emitter honest in CI without timing noise
#   scripts/bench.sh -o FILE    # write the JSON somewhere else
#
# Requires Google Benchmark (bench_kernels is skipped by CMake without it)
# and python3 for the JSON post-processing.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=BENCH_kernels.json
MODE=full
# Scalar + dispatched packed + every per-tier PackedWords/AVX2/AVX512/NEON
# row this CPU registered, plus the BM_ScanBlockPacked/M/D/Q multi-query
# sweep behind the v3 block_speedup table.
FILTER='^BM_Scan((Best|Dots)(Scalar|Packed[A-Za-z0-9]*)|BlockPacked)/'
BENCH_ARGS=()

while [ $# -gt 0 ]; do
  case "$1" in
    --smoke)
      MODE=smoke
      # Small dims only, and a short measurement window: the smoke run
      # exists to exercise the emitter end to end, not to produce numbers.
      FILTER='^BM_Scan((Best|Dots)(Scalar|Packed[A-Za-z0-9]*)/64/(63|256)|BlockPacked/64/256/(1|64))$'
      BENCH_ARGS+=(--benchmark_min_time=0.01)
      shift
      ;;
    -o)
      OUT=$2
      shift 2
      ;;
    *)
      echo "usage: scripts/bench.sh [--smoke] [-o FILE]" >&2
      exit 2
      ;;
  esac
done

BIN="$BUILD_DIR/bin/bench_kernels"
if [ ! -x "$BIN" ]; then
  # Explicit Release (the project default) so a fresh build dir always
  # passes the full-mode guard below, even with CMAKE_BUILD_TYPE inherited
  # from the environment.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  if ! cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_kernels; then
    echo "bench.sh: building bench_kernels failed (see errors above;" \
         "if the target is unknown, Google Benchmark is not installed)" >&2
    exit 1
  fi
fi

# Guard against an unoptimized baseline: full-mode numbers are only
# meaningful from an optimized build. Smoke mode tolerates anything (its
# numbers are discarded) but still records the build type in the JSON.
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
case "$MODE/$BUILD_TYPE" in
  full/Release | full/RelWithDebInfo | smoke/*) ;;
  *)
    echo "bench.sh: refusing a full run from a '$BUILD_TYPE' build dir" \
         "($BUILD_DIR) — configure Release or use --smoke" >&2
    exit 1
    ;;
esac

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# The ${arr[@]+...} form keeps `set -u` happy on bash < 4.4 when the
# array is empty (the default full mode adds no extra flags).
"$BIN" --benchmark_filter="$FILTER" --benchmark_format=json \
  ${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"} > "$RAW"

python3 scripts/bench_json.py --mode "$MODE" --raw "$RAW" --out "$OUT" \
  --build-type "$BUILD_TYPE"
echo "wrote $OUT"
